//! Walking-survey record tables and radio-map creation (Section II-B).

use std::cmp::Ordering;

use rm_geometry::Point;

use crate::fingerprint::Fingerprint;
use crate::radiomap::{RadioMap, RadioMapRecord};

/// A measurement taken during a walking survey.
#[derive(Debug, Clone, PartialEq)]
pub enum SurveyMeasurement {
    /// The surveyor reached a pre-selected reference point.
    ReferencePoint(Point),
    /// A scan result: sparse `(access point index, RSSI in dBm)` pairs.
    RssiScan(Vec<(usize, f64)>),
}

/// One timestamped row of a walking-survey record table.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyEntry {
    /// Collection time in seconds since the start of the survey.
    pub time: f64,
    /// The measurement recorded at that time.
    pub measurement: SurveyMeasurement,
}

impl SurveyEntry {
    /// Creates an RP entry.
    pub fn rp(time: f64, location: Point) -> Self {
        Self {
            time,
            measurement: SurveyMeasurement::ReferencePoint(location),
        }
    }

    /// Creates an RSSI-scan entry.
    pub fn rssi(time: f64, readings: Vec<(usize, f64)>) -> Self {
        Self {
            time,
            measurement: SurveyMeasurement::RssiScan(readings),
        }
    }
}

/// The walking-survey record table for one venue: one entry list per survey
/// path, each sorted by time (Table II of the paper shows a single path).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalkingSurveyTable {
    paths: Vec<Vec<SurveyEntry>>,
    num_aps: usize,
}

impl WalkingSurveyTable {
    /// Creates a survey table over `num_aps` access points.
    pub fn new(num_aps: usize) -> Self {
        Self {
            paths: Vec::new(),
            num_aps,
        }
    }

    /// Number of access points.
    pub fn num_aps(&self) -> usize {
        self.num_aps
    }

    /// Number of survey paths.
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// The entries of all paths.
    pub fn paths(&self) -> &[Vec<SurveyEntry>] {
        &self.paths
    }

    /// Adds a survey path; its entries are sorted by time.
    pub fn add_path(&mut self, mut entries: Vec<SurveyEntry>) -> usize {
        entries.sort_by(|a, b| a.time.partial_cmp(&b.time).unwrap_or(Ordering::Equal));
        self.paths.push(entries);
        self.paths.len() - 1
    }

    /// Total number of RP entries across all paths.
    pub fn rp_entry_count(&self) -> usize {
        self.paths
            .iter()
            .flatten()
            .filter(|e| matches!(e.measurement, SurveyMeasurement::ReferencePoint(_)))
            .count()
    }

    /// Total number of RSSI-scan entries across all paths.
    pub fn rssi_entry_count(&self) -> usize {
        self.paths
            .iter()
            .flatten()
            .filter(|e| matches!(e.measurement, SurveyMeasurement::RssiScan(_)))
            .count()
    }

    /// Creates a radio map from the survey table using the two-step merging
    /// pre-processing of Section II-B with threshold `epsilon` (seconds):
    ///
    /// 1. consecutive RSSI records whose times differ by at most `epsilon` are
    ///    merged (earlier time kept, overlapping APs averaged);
    /// 2. a merged RSSI record and an adjacent RP record whose times differ by
    ///    at most `epsilon` are merged into one radio-map record;
    /// 3. every remaining record becomes a radio-map record with `null`s for
    ///    the missing parts.
    pub fn create_radio_map(&self, epsilon: f64) -> RadioMap {
        let mut records = Vec::new();
        for (path_id, entries) in self.paths.iter().enumerate() {
            records.extend(self.create_path_records(entries, epsilon, path_id));
        }
        RadioMap::new(records, self.num_aps)
    }

    /// Intermediate record used during merging.
    fn create_path_records(
        &self,
        entries: &[SurveyEntry],
        epsilon: f64,
        path_id: usize,
    ) -> Vec<RadioMapRecord> {
        #[derive(Clone)]
        enum Pending {
            Rssi { time: f64, fingerprint: Fingerprint },
            Rp { time: f64, location: Point },
        }

        // Step 1: merge consecutive RSSI scans within epsilon.
        let mut pending: Vec<Pending> = Vec::new();
        for entry in entries {
            match &entry.measurement {
                SurveyMeasurement::RssiScan(readings) => {
                    let fingerprint = self.scan_to_fingerprint(readings);
                    match pending.last_mut() {
                        Some(Pending::Rssi {
                            time,
                            fingerprint: existing,
                        }) if entry.time - *time <= epsilon => {
                            *existing = existing.merge_average(&fingerprint);
                            // The merged record keeps the earlier time.
                        }
                        _ => pending.push(Pending::Rssi {
                            time: entry.time,
                            fingerprint,
                        }),
                    }
                }
                SurveyMeasurement::ReferencePoint(location) => pending.push(Pending::Rp {
                    time: entry.time,
                    location: *location,
                }),
            }
        }

        // Step 2: merge adjacent RSSI and RP records within epsilon.
        let mut records: Vec<RadioMapRecord> = Vec::new();
        let mut i = 0usize;
        while i < pending.len() {
            match &pending[i] {
                Pending::Rssi { time, fingerprint } => {
                    // Look one ahead for an RP to absorb.
                    if let Some(Pending::Rp {
                        time: rp_time,
                        location,
                    }) = pending.get(i + 1)
                    {
                        if (rp_time - time).abs() <= epsilon {
                            records.push(RadioMapRecord::new(
                                fingerprint.clone(),
                                Some(*location),
                                *time,
                                path_id,
                            ));
                            i += 2;
                            continue;
                        }
                    }
                    records.push(RadioMapRecord::new(
                        fingerprint.clone(),
                        None,
                        *time,
                        path_id,
                    ));
                    i += 1;
                }
                Pending::Rp { time, location } => {
                    // Look one ahead for an RSSI record to absorb.
                    if let Some(Pending::Rssi {
                        time: rssi_time,
                        fingerprint,
                    }) = pending.get(i + 1)
                    {
                        if (rssi_time - time).abs() <= epsilon {
                            records.push(RadioMapRecord::new(
                                fingerprint.clone(),
                                Some(*location),
                                *rssi_time,
                                path_id,
                            ));
                            i += 2;
                            continue;
                        }
                    }
                    records.push(RadioMapRecord::new(
                        Fingerprint::empty(self.num_aps),
                        Some(*location),
                        *time,
                        path_id,
                    ));
                    i += 1;
                }
            }
        }
        records
    }

    fn scan_to_fingerprint(&self, readings: &[(usize, f64)]) -> Fingerprint {
        let mut fingerprint = Fingerprint::empty(self.num_aps);
        for &(ap, rssi) in readings {
            if ap < self.num_aps {
                fingerprint.set(ap, Some(rssi));
            }
        }
        fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstructs the running example of the paper (Tables II and III).
    fn paper_example() -> WalkingSurveyTable {
        let mut table = WalkingSurveyTable::new(5);
        table.add_path(vec![
            SurveyEntry::rp(0.0, Point::new(1.0, 1.0)), // t1 = 0, (x1, y1)
            SurveyEntry::rssi(1.0, vec![(0, -70.0), (1, -83.0), (2, -76.0)]), // t2 = 1
            SurveyEntry::rssi(3.0, vec![(0, -71.0), (2, -78.0)]), // t3 = 3
            SurveyEntry::rssi(8.0, vec![(2, -80.0), (3, -68.0)]), // t4 = 8
            SurveyEntry::rp(9.0, Point::new(5.0, 5.0)), // t5 = 9, (x5, y5)
            SurveyEntry::rssi(12.0, vec![(0, -74.0), (4, -80.0)]), // t6 = 12
            SurveyEntry::rssi(13.0, vec![(1, -77.0), (4, -82.0)]), // t7 = 13
            SurveyEntry::rp(16.0, Point::new(8.0, 8.0)), // t8 = 16, (x8, y8)
        ]);
        table
    }

    #[test]
    fn entry_counts() {
        let table = paper_example();
        assert_eq!(table.num_paths(), 1);
        assert_eq!(table.rp_entry_count(), 3);
        assert_eq!(table.rssi_entry_count(), 5);
    }

    #[test]
    fn radio_map_creation_matches_paper_table_iii() {
        let table = paper_example();
        let map = table.create_radio_map(1.0);
        assert_eq!(map.len(), 5);
        let records = map.records();

        // Record 1: ((-70, -83, -76, null, null), (x1, y1)) at t2.
        assert_eq!(records[0].rp, Some(Point::new(1.0, 1.0)));
        assert_eq!(records[0].fingerprint.get(0), Some(-70.0));
        assert_eq!(records[0].fingerprint.get(1), Some(-83.0));
        assert_eq!(records[0].fingerprint.get(2), Some(-76.0));
        assert_eq!(records[0].fingerprint.get(3), None);
        assert_eq!(records[0].time, 1.0);

        // Record 2: ((-71, null, -78, null, null), null) at t3.
        assert_eq!(records[1].rp, None);
        assert_eq!(records[1].fingerprint.get(0), Some(-71.0));
        assert_eq!(records[1].fingerprint.get(2), Some(-78.0));

        // Record 3: ((null, null, -80, -68, null), (x5, y5)) at t4.
        assert_eq!(records[2].rp, Some(Point::new(5.0, 5.0)));
        assert_eq!(records[2].fingerprint.get(2), Some(-80.0));
        assert_eq!(records[2].fingerprint.get(3), Some(-68.0));
        assert_eq!(records[2].fingerprint.get(0), None);

        // Record 4: ((-74, -77, null, null, -81), null) at t6 — the two scans
        // at t6 and t7 merge, AP 5 averages to -81.
        assert_eq!(records[3].rp, None);
        assert_eq!(records[3].fingerprint.get(0), Some(-74.0));
        assert_eq!(records[3].fingerprint.get(1), Some(-77.0));
        assert_eq!(records[3].fingerprint.get(4), Some(-81.0));
        assert_eq!(records[3].time, 12.0);

        // Record 5: all-null fingerprint with the RP at t8.
        assert_eq!(records[4].rp, Some(Point::new(8.0, 8.0)));
        assert_eq!(records[4].fingerprint.observed_count(), 0);
    }

    #[test]
    fn sparsity_of_created_map() {
        let table = paper_example();
        let map = table.create_radio_map(1.0);
        // 25 cells, 10 observed.
        assert!((map.missing_rssi_rate() - 15.0 / 25.0).abs() < 1e-12);
        assert!((map.missing_rp_rate() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn larger_epsilon_merges_more() {
        let table = paper_example();
        // With a huge epsilon every scan merges into very few records.
        let coarse = table.create_radio_map(100.0);
        let fine = table.create_radio_map(0.1);
        assert!(coarse.len() < fine.len());
    }

    #[test]
    fn add_path_sorts_by_time() {
        let mut table = WalkingSurveyTable::new(2);
        table.add_path(vec![
            SurveyEntry::rssi(5.0, vec![(0, -50.0)]),
            SurveyEntry::rp(0.0, Point::new(0.0, 0.0)),
        ]);
        assert_eq!(table.paths()[0][0].time, 0.0);
    }

    #[test]
    fn out_of_range_ap_indices_are_ignored() {
        let mut table = WalkingSurveyTable::new(2);
        table.add_path(vec![SurveyEntry::rssi(0.0, vec![(0, -40.0), (7, -60.0)])]);
        let map = table.create_radio_map(1.0);
        assert_eq!(map.records()[0].fingerprint.observed_count(), 1);
    }

    #[test]
    fn multiple_paths_get_distinct_ids() {
        let mut table = WalkingSurveyTable::new(1);
        table.add_path(vec![SurveyEntry::rssi(0.0, vec![(0, -40.0)])]);
        table.add_path(vec![SurveyEntry::rssi(0.0, vec![(0, -45.0)])]);
        let map = table.create_radio_map(1.0);
        assert_eq!(map.num_paths(), 2);
        assert_ne!(map.records()[0].path_id, map.records()[1].path_id);
    }
}
