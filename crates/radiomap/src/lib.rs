//! Radio-map data model for fingerprinting-based indoor positioning.
//!
//! This crate defines the data structures shared by every component of the
//! imputation framework:
//!
//! * [`Fingerprint`] — a vector of optional RSSIs over `D` access points,
//! * [`RadioMapRecord`] / [`RadioMap`] — the sparse radio map produced by a
//!   walking survey, grouped into survey paths,
//! * [`WalkingSurveyTable`] — raw survey records and the two-step radio-map
//!   creation of Section II-B of the paper,
//! * [`MaskMatrix`] — the `{-1, 0, 1}` MNAR/MAR/observed mask produced by the
//!   missing-RSSI differentiator,
//! * [`DenseRadioMap`] — a fully-imputed map usable by location estimation,
//! * [`perturb`] — controlled removal of observations (the `α`/`β` removal
//!   ratios of the evaluation) with ground truth for error measurement,
//! * [`VenueShards`] — deterministic spatial sharding of a venue's survey
//!   paths, the partition behind the sharded pipeline and per-shard serving,
//! * [`RadioMapStats`] — Table V-style venue statistics.

pub mod fingerprint;
pub mod mask;
pub mod perturb;
pub mod radiomap;
pub mod shard;
pub mod stats;
pub mod survey;

pub use fingerprint::{Fingerprint, MAX_OBSERVED_RSSI, MIN_OBSERVED_RSSI, MNAR_FILL_VALUE};
pub use mask::{EntryKind, MaskMatrix};
pub use perturb::{
    remove_random_rps, remove_random_rssis, split_test_records, RemovedRp, RemovedRssi,
};
pub use radiomap::{DenseRadioMap, RadioMap, RadioMapRecord};
pub use shard::VenueShards;
pub use stats::RadioMapStats;
pub use survey::{SurveyEntry, SurveyMeasurement, WalkingSurveyTable};
