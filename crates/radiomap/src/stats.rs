//! Venue and radio-map statistics (Table V of the paper).

use crate::radiomap::RadioMap;

/// Summary statistics of a venue and its created radio map, mirroring the
/// columns of Table V: floor area, RP density, number of fingerprints, number
/// of RPs and number of access points.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioMapStats {
    /// Venue name.
    pub venue: String,
    /// Floor area in square metres.
    pub floor_area_m2: f64,
    /// Number of distinct reference points in the venue.
    pub num_rps: usize,
    /// Reference points per 100 square metres.
    pub rp_density_per_100m2: f64,
    /// Number of fingerprints (radio-map records).
    pub num_fingerprints: usize,
    /// Number of access points (fingerprint dimensionality).
    pub num_aps: usize,
    /// Fraction of missing RSSI entries.
    pub missing_rssi_rate: f64,
    /// Fraction of records with a missing reference point.
    pub missing_rp_rate: f64,
}

impl RadioMapStats {
    /// Computes statistics from a radio map plus venue metadata.
    pub fn from_radio_map(
        venue: impl Into<String>,
        floor_area_m2: f64,
        num_rps: usize,
        map: &RadioMap,
    ) -> Self {
        let rp_density = if floor_area_m2 > 0.0 {
            num_rps as f64 / floor_area_m2 * 100.0
        } else {
            0.0
        };
        Self {
            venue: venue.into(),
            floor_area_m2,
            num_rps,
            rp_density_per_100m2: rp_density,
            num_fingerprints: map.len(),
            num_aps: map.num_aps(),
            missing_rssi_rate: map.missing_rssi_rate(),
            missing_rp_rate: map.missing_rp_rate(),
        }
    }

    /// Renders one row of a Table V-style report.
    pub fn to_table_row(&self) -> String {
        format!(
            "{:<12} {:>10.1} {:>8} {:>10.2} {:>14} {:>8} {:>12.1}% {:>12.1}%",
            self.venue,
            self.floor_area_m2,
            self.num_rps,
            self.rp_density_per_100m2,
            self.num_fingerprints,
            self.num_aps,
            self.missing_rssi_rate * 100.0,
            self.missing_rp_rate * 100.0,
        )
    }

    /// Header matching [`RadioMapStats::to_table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<12} {:>10} {:>8} {:>10} {:>14} {:>8} {:>13} {:>13}",
            "Venue",
            "Area(m2)",
            "#RPs",
            "RP/100m2",
            "#Fingerprints",
            "#APs",
            "RSSI-miss",
            "RP-miss"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use crate::radiomap::RadioMapRecord;
    use rm_geometry::Point;

    fn small_map() -> RadioMap {
        let records = vec![
            RadioMapRecord::new(
                Fingerprint::new(vec![Some(-70.0), None]),
                Some(Point::new(0.0, 0.0)),
                0.0,
                0,
            ),
            RadioMapRecord::new(Fingerprint::new(vec![None, None]), None, 1.0, 0),
        ];
        RadioMap::new(records, 2)
    }

    #[test]
    fn stats_from_radio_map() {
        let stats = RadioMapStats::from_radio_map("TestVenue", 200.0, 4, &small_map());
        assert_eq!(stats.num_fingerprints, 2);
        assert_eq!(stats.num_aps, 2);
        assert_eq!(stats.num_rps, 4);
        assert!((stats.rp_density_per_100m2 - 2.0).abs() < 1e-12);
        assert!((stats.missing_rssi_rate - 0.75).abs() < 1e-12);
        assert!((stats.missing_rp_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_area_density_is_zero() {
        let stats = RadioMapStats::from_radio_map("X", 0.0, 10, &small_map());
        assert_eq!(stats.rp_density_per_100m2, 0.0);
    }

    #[test]
    fn table_rendering_contains_values() {
        let stats = RadioMapStats::from_radio_map("Kaide", 3225.7, 114, &small_map());
        let row = stats.to_table_row();
        assert!(row.contains("Kaide"));
        assert!(row.contains("114"));
        assert!(RadioMapStats::table_header().contains("Venue"));
    }
}
