//! Fingerprints: vectors of (possibly missing) RSSI values.

/// The lowest possible observed RSSI value in dBm (Section I of the paper:
/// observed RSSIs lie in `[-99, 0]` dBm).
pub const MIN_OBSERVED_RSSI: f64 = -99.0;

/// The highest possible RSSI value in dBm.
pub const MAX_OBSERVED_RSSI: f64 = 0.0;

/// The value used to fill MNAR entries: `-100` dBm, strictly below every
/// observable RSSI, reflecting that the access point is unobservable.
pub const MNAR_FILL_VALUE: f64 = -100.0;

/// A Wi-Fi (or Bluetooth) fingerprint: one optional RSSI per access point.
///
/// `None` encodes a `null` in the radio map — a missing RSSI that is later
/// classified as MAR or MNAR by the differentiator.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    rssis: Vec<Option<f64>>,
}

impl Fingerprint {
    /// Creates a fingerprint from per-AP optional RSSIs.
    pub fn new(rssis: Vec<Option<f64>>) -> Self {
        Self { rssis }
    }

    /// Creates an all-null fingerprint over `num_aps` access points.
    pub fn empty(num_aps: usize) -> Self {
        Self {
            rssis: vec![None; num_aps],
        }
    }

    /// Creates a fully-observed fingerprint from dense values.
    pub fn dense(values: &[f64]) -> Self {
        Self {
            rssis: values.iter().map(|&v| Some(v)).collect(),
        }
    }

    /// Number of access points (the fingerprint dimensionality `D`).
    pub fn num_aps(&self) -> usize {
        self.rssis.len()
    }

    /// The optional RSSI of access point `ap`.
    pub fn get(&self, ap: usize) -> Option<f64> {
        self.rssis.get(ap).copied().flatten()
    }

    /// Sets the RSSI of access point `ap`.
    ///
    /// # Panics
    /// Panics if `ap` is out of range.
    pub fn set(&mut self, ap: usize, value: Option<f64>) {
        self.rssis[ap] = value;
    }

    /// Raw per-AP optional values.
    pub fn values(&self) -> &[Option<f64>] {
        &self.rssis
    }

    /// Returns `true` if the RSSI of access point `ap` is observed.
    pub fn is_observed(&self, ap: usize) -> bool {
        self.get(ap).is_some()
    }

    /// Number of observed (non-null) RSSIs.
    pub fn observed_count(&self) -> usize {
        self.rssis.iter().filter(|r| r.is_some()).count()
    }

    /// Number of missing (null) RSSIs.
    pub fn missing_count(&self) -> usize {
        self.num_aps() - self.observed_count()
    }

    /// Fraction of missing RSSIs in `[0, 1]`; 0 for an empty fingerprint.
    pub fn missing_rate(&self) -> f64 {
        if self.rssis.is_empty() {
            0.0
        } else {
            self.missing_count() as f64 / self.num_aps() as f64
        }
    }

    /// Indices of the observed access points.
    pub fn observed_aps(&self) -> Vec<usize> {
        self.rssis
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// The BINARIZATION of Algorithm 1: a `{0, 1}` vector with 1 where the AP
    /// is observed.
    pub fn binarize(&self) -> Vec<f64> {
        self.rssis
            .iter()
            .map(|r| if r.is_some() { 1.0 } else { 0.0 })
            .collect()
    }

    /// Converts the fingerprint into a dense vector, replacing nulls with
    /// `fill`.
    pub fn to_dense(&self, fill: f64) -> Vec<f64> {
        self.rssis.iter().map(|r| r.unwrap_or(fill)).collect()
    }

    /// Element-wise average of two fingerprints over the same AP set, as used
    /// by Step 1 of radio-map creation: where both observe an AP the mean is
    /// taken, where only one observes it that value is kept, otherwise the
    /// entry stays null.
    ///
    /// # Panics
    /// Panics if the dimensionalities differ.
    pub fn merge_average(&self, other: &Fingerprint) -> Fingerprint {
        assert_eq!(
            self.num_aps(),
            other.num_aps(),
            "cannot merge fingerprints of different dimensionality"
        );
        let rssis = self
            .rssis
            .iter()
            .zip(other.rssis.iter())
            .map(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => Some((x + y) / 2.0),
                (Some(x), None) => Some(*x),
                (None, Some(y)) => Some(*y),
                (None, None) => None,
            })
            .collect();
        Fingerprint::new(rssis)
    }

    /// Euclidean distance between the observed-in-both parts of two
    /// fingerprints; access points missing in either fingerprint are skipped.
    /// Returns `None` when no AP is observed in both.
    pub fn observed_distance(&self, other: &Fingerprint) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (a, b) in self.rssis.iter().zip(other.rssis.iter()) {
            if let (Some(x), Some(y)) = (a, b) {
                let d = x - y;
                sum += d * d;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum.sqrt())
        }
    }
}

impl From<Vec<Option<f64>>> for Fingerprint {
    fn from(rssis: Vec<Option<f64>>) -> Self {
        Fingerprint::new(rssis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Fingerprint {
        Fingerprint::new(vec![Some(-70.0), None, Some(-80.0), None, None])
    }

    #[test]
    fn counting_and_rates() {
        let f = sample();
        assert_eq!(f.num_aps(), 5);
        assert_eq!(f.observed_count(), 2);
        assert_eq!(f.missing_count(), 3);
        assert!((f.missing_rate() - 0.6).abs() < 1e-12);
        assert_eq!(f.observed_aps(), vec![0, 2]);
        assert_eq!(Fingerprint::empty(0).missing_rate(), 0.0);
    }

    #[test]
    fn get_set_and_observed() {
        let mut f = sample();
        assert_eq!(f.get(0), Some(-70.0));
        assert_eq!(f.get(1), None);
        assert_eq!(f.get(99), None);
        assert!(f.is_observed(0));
        assert!(!f.is_observed(1));
        f.set(1, Some(-55.0));
        assert_eq!(f.get(1), Some(-55.0));
        f.set(0, None);
        assert!(!f.is_observed(0));
    }

    #[test]
    fn binarize_matches_observations() {
        let f = sample();
        assert_eq!(f.binarize(), vec![1.0, 0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn to_dense_fills_nulls() {
        let f = sample();
        assert_eq!(
            f.to_dense(MNAR_FILL_VALUE),
            vec![-70.0, -100.0, -80.0, -100.0, -100.0]
        );
    }

    #[test]
    fn merge_average_follows_step1_rules() {
        let a = Fingerprint::new(vec![Some(-70.0), Some(-83.0), None]);
        let b = Fingerprint::new(vec![Some(-72.0), None, None]);
        let merged = a.merge_average(&b);
        assert_eq!(merged.get(0), Some(-71.0)); // both observed: mean
        assert_eq!(merged.get(1), Some(-83.0)); // only in a
        assert_eq!(merged.get(2), None); // in neither
    }

    #[test]
    #[should_panic(expected = "different dimensionality")]
    fn merge_average_rejects_mismatched_dims() {
        let a = Fingerprint::empty(3);
        let b = Fingerprint::empty(4);
        let _ = a.merge_average(&b);
    }

    #[test]
    fn observed_distance_skips_missing() {
        let a = Fingerprint::new(vec![Some(0.0), Some(3.0), None]);
        let b = Fingerprint::new(vec![Some(4.0), None, Some(1.0)]);
        // Only AP 0 is observed in both: distance 4.
        assert_eq!(a.observed_distance(&b), Some(4.0));
        let c = Fingerprint::new(vec![None, Some(1.0), None]);
        let d = Fingerprint::new(vec![Some(1.0), None, None]);
        assert_eq!(c.observed_distance(&d), None);
    }

    #[test]
    fn dense_constructor_observes_everything() {
        let f = Fingerprint::dense(&[-50.0, -60.0]);
        assert_eq!(f.observed_count(), 2);
        assert_eq!(f.missing_rate(), 0.0);
    }
}
