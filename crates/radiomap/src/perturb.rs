//! Controlled perturbation of radio maps for evaluation.
//!
//! The paper's experiments remove a fraction of observed values and use the
//! removed values as ground truth:
//!
//! * the removal ratio `α` (Section V-B) nullifies observed RSSIs *before*
//!   differentiation, stressing the differentiators under higher sparsity;
//! * the removal ratio `β` (Section V-C) nullifies observed RSSIs or RPs
//!   *after* MNAR filling, providing ground truth for imputation error
//!   (MAE on RSSIs, Euclidean distance on RPs).

use rand::seq::SliceRandom;
use rand::Rng;

use rm_geometry::Point;

use crate::radiomap::RadioMap;

/// A removed RSSI observation: record index, AP index and the original value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemovedRssi {
    /// Record (row) index in the radio map.
    pub record: usize,
    /// Access-point (column) index.
    pub ap: usize,
    /// The value that was removed, in dBm.
    pub value: f64,
}

/// A removed reference point: record index and the original location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemovedRp {
    /// Record index in the radio map.
    pub record: usize,
    /// The location that was removed.
    pub location: Point,
}

/// Randomly nullifies a fraction `ratio` of the *observed* RSSI entries.
///
/// Returns the modified map and the list of removed observations (the ground
/// truth for imputation-error evaluation).
pub fn remove_random_rssis(
    map: &RadioMap,
    ratio: f64,
    rng: &mut impl Rng,
) -> (RadioMap, Vec<RemovedRssi>) {
    let mut observed: Vec<(usize, usize, f64)> = Vec::new();
    for (i, record) in map.records().iter().enumerate() {
        for ap in 0..map.num_aps() {
            if let Some(v) = record.fingerprint.get(ap) {
                observed.push((i, ap, v));
            }
        }
    }
    observed.shuffle(rng);
    let to_remove = ((observed.len() as f64) * ratio.clamp(0.0, 1.0)).round() as usize;
    let removed: Vec<RemovedRssi> = observed
        .into_iter()
        .take(to_remove)
        .map(|(record, ap, value)| RemovedRssi { record, ap, value })
        .collect();

    let mut new_map = map.clone();
    for r in &removed {
        new_map.records_mut()[r.record].fingerprint.set(r.ap, None);
    }
    (new_map, removed)
}

/// Randomly nullifies a fraction `ratio` of the *observed* reference points.
///
/// Returns the modified map and the removed `(record, location)` pairs.
pub fn remove_random_rps(
    map: &RadioMap,
    ratio: f64,
    rng: &mut impl Rng,
) -> (RadioMap, Vec<RemovedRp>) {
    let mut observed: Vec<(usize, Point)> = map
        .records()
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.rp.map(|p| (i, p)))
        .collect();
    observed.shuffle(rng);
    let to_remove = ((observed.len() as f64) * ratio.clamp(0.0, 1.0)).round() as usize;
    let removed: Vec<RemovedRp> = observed
        .into_iter()
        .take(to_remove)
        .map(|(record, location)| RemovedRp { record, location })
        .collect();

    let mut new_map = map.clone();
    for r in &removed {
        new_map.records_mut()[r.record].rp = None;
    }
    (new_map, removed)
}

/// Splits the records that have observed RPs into a test set (a fraction
/// `test_fraction` of them, with their RPs as ground-truth locations) and
/// returns `(training map, test record indices)`. This mirrors the evaluation
/// control of Section V-A: 10 % of records with observed RPs become online
/// test queries.
pub fn split_test_records(
    map: &RadioMap,
    test_fraction: f64,
    rng: &mut impl Rng,
) -> (RadioMap, Vec<usize>) {
    let mut rp_records: Vec<usize> = map
        .records()
        .iter()
        .enumerate()
        .filter(|(_, r)| r.has_rp())
        .map(|(i, _)| i)
        .collect();
    rp_records.shuffle(rng);
    let test_count = ((rp_records.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
    let test_indices: Vec<usize> = rp_records.into_iter().take(test_count).collect();

    let training = map.clone();
    (training, test_indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use crate::radiomap::RadioMapRecord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_map(n: usize, d: usize) -> RadioMap {
        let records = (0..n)
            .map(|i| {
                RadioMapRecord::new(
                    Fingerprint::dense(&vec![-60.0 - i as f64; d]),
                    Some(Point::new(i as f64, 0.0)),
                    i as f64,
                    0,
                )
            })
            .collect();
        RadioMap::new(records, d)
    }

    #[test]
    fn remove_rssis_respects_ratio_and_returns_ground_truth() {
        let map = dense_map(10, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let (perturbed, removed) = remove_random_rssis(&map, 0.25, &mut rng);
        assert_eq!(removed.len(), 20); // 25% of 80
        let missing: usize = perturbed
            .records()
            .iter()
            .map(|r| r.fingerprint.missing_count())
            .sum();
        assert_eq!(missing, 20);
        // Ground-truth values match the original map.
        for r in &removed {
            assert_eq!(map.record(r.record).fingerprint.get(r.ap), Some(r.value));
            assert_eq!(perturbed.record(r.record).fingerprint.get(r.ap), None);
        }
    }

    #[test]
    fn remove_rssis_with_zero_and_full_ratio() {
        let map = dense_map(4, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let (same, removed) = remove_random_rssis(&map, 0.0, &mut rng);
        assert!(removed.is_empty());
        assert_eq!(same, map);
        let (empty, removed_all) = remove_random_rssis(&map, 1.0, &mut rng);
        assert_eq!(removed_all.len(), 12);
        assert_eq!(empty.observed_rssi_count(), 0);
    }

    #[test]
    fn remove_rps_respects_ratio() {
        let map = dense_map(10, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let (perturbed, removed) = remove_random_rps(&map, 0.5, &mut rng);
        assert_eq!(removed.len(), 5);
        assert_eq!(perturbed.observed_rp_count(), 5);
        for r in &removed {
            assert_eq!(map.record(r.record).rp, Some(r.location));
            assert_eq!(perturbed.record(r.record).rp, None);
        }
    }

    #[test]
    fn split_test_records_selects_only_rp_records() {
        let mut map = dense_map(10, 2);
        // Drop RPs from half of the records.
        for i in 0..5 {
            map.records_mut()[i].rp = None;
        }
        let mut rng = StdRng::seed_from_u64(4);
        let (_, test_indices) = split_test_records(&map, 0.4, &mut rng);
        assert_eq!(test_indices.len(), 2); // 40% of 5
        for &i in &test_indices {
            assert!(map.record(i).has_rp());
        }
    }

    #[test]
    fn removal_is_deterministic_given_seed() {
        let map = dense_map(6, 4);
        let (a, ra) = remove_random_rssis(&map, 0.3, &mut StdRng::seed_from_u64(9));
        let (b, rb) = remove_random_rssis(&map, 0.3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
