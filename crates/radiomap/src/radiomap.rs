//! Radio maps: sequences of `(fingerprint, reference point)` records.

use rm_geometry::Point;

use crate::fingerprint::Fingerprint;

/// A single radio-map record: a fingerprint, an optional reference point and
/// the collection timestamp (seconds since the start of the survey).
///
/// The paper's radio map (Table III) does not store timestamps explicitly, but
/// they are produced by radio-map creation and needed by the imputer's
/// time-lag mechanism, so they are carried along here.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioMapRecord {
    /// The fingerprint of optional RSSIs.
    pub fingerprint: Fingerprint,
    /// The reference point, or `None` when the location label is missing.
    pub rp: Option<Point>,
    /// Collection time in seconds.
    pub time: f64,
    /// Identifier of the survey path this record was collected on.
    pub path_id: usize,
}

impl RadioMapRecord {
    /// Creates a record.
    pub fn new(fingerprint: Fingerprint, rp: Option<Point>, time: f64, path_id: usize) -> Self {
        Self {
            fingerprint,
            rp,
            time,
            path_id,
        }
    }

    /// Returns `true` if the reference point is observed.
    pub fn has_rp(&self) -> bool {
        self.rp.is_some()
    }
}

/// A sparse radio map: `N` records over `D` access points, grouped into survey
/// paths.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioMap {
    records: Vec<RadioMapRecord>,
    num_aps: usize,
}

impl RadioMap {
    /// Creates a radio map from records.
    ///
    /// # Panics
    /// Panics if any record's fingerprint dimensionality differs from
    /// `num_aps`.
    pub fn new(records: Vec<RadioMapRecord>, num_aps: usize) -> Self {
        for (i, r) in records.iter().enumerate() {
            assert_eq!(
                r.fingerprint.num_aps(),
                num_aps,
                "record {i} has {} APs, expected {num_aps}",
                r.fingerprint.num_aps()
            );
        }
        Self { records, num_aps }
    }

    /// An empty radio map over `num_aps` access points.
    pub fn empty(num_aps: usize) -> Self {
        Self {
            records: Vec::new(),
            num_aps,
        }
    }

    /// Number of records `N`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the map has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of access points `D` (fingerprint dimensionality).
    pub fn num_aps(&self) -> usize {
        self.num_aps
    }

    /// All records in collection order.
    pub fn records(&self) -> &[RadioMapRecord] {
        &self.records
    }

    /// Mutable access to the records.
    pub fn records_mut(&mut self) -> &mut [RadioMapRecord] {
        &mut self.records
    }

    /// The record at `index`.
    pub fn record(&self, index: usize) -> &RadioMapRecord {
        &self.records[index]
    }

    /// Appends a record.
    ///
    /// # Panics
    /// Panics if the fingerprint dimensionality does not match.
    pub fn push(&mut self, record: RadioMapRecord) {
        assert_eq!(record.fingerprint.num_aps(), self.num_aps);
        self.records.push(record);
    }

    /// Number of distinct survey paths.
    pub fn num_paths(&self) -> usize {
        let mut ids: Vec<usize> = self.records.iter().map(|r| r.path_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Groups record indices by survey path, preserving record order within
    /// each path. Sequence models (BiSIM, BRITS) operate per path.
    pub fn path_record_indices(&self) -> Vec<Vec<usize>> {
        let mut paths: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            match paths.iter_mut().find(|(id, _)| *id == r.path_id) {
                Some((_, v)) => v.push(i),
                None => paths.push((r.path_id, vec![i])),
            }
        }
        paths.sort_by_key(|(id, _)| *id);
        paths.into_iter().map(|(_, v)| v).collect()
    }

    /// Number of records with an observed reference point.
    pub fn observed_rp_count(&self) -> usize {
        self.records.iter().filter(|r| r.has_rp()).count()
    }

    /// Fraction of records whose reference point is missing.
    pub fn missing_rp_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            1.0 - self.observed_rp_count() as f64 / self.records.len() as f64
        }
    }

    /// Fraction of missing RSSI entries over the whole `N × D` matrix.
    pub fn missing_rssi_rate(&self) -> f64 {
        let total = self.records.len() * self.num_aps;
        if total == 0 {
            return 0.0;
        }
        let missing: usize = self
            .records
            .iter()
            .map(|r| r.fingerprint.missing_count())
            .sum();
        missing as f64 / total as f64
    }

    /// Total number of observed RSSI entries.
    pub fn observed_rssi_count(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.fingerprint.observed_count())
            .sum()
    }

    /// Linearly interpolates missing reference points along each survey path,
    /// based on the previously and subsequently observed RPs (the strategy
    /// used both by Algorithm 2's sample construction and by the `LI`
    /// baseline imputer). Records on paths without any observed RP keep a
    /// `None` RP.
    ///
    /// Returns one optional point per record: observed RPs are passed through,
    /// interpolated positions fill the gaps where possible.
    pub fn interpolate_rps(&self) -> Vec<Option<Point>> {
        let mut result: Vec<Option<Point>> = self.records.iter().map(|r| r.rp).collect();
        for path in self.path_record_indices() {
            // Collect the observed anchors (position within path, record index).
            let anchors: Vec<(usize, Point)> = path
                .iter()
                .enumerate()
                .filter_map(|(pos, &idx)| self.records[idx].rp.map(|p| (pos, p)))
                .collect();
            if anchors.is_empty() {
                continue;
            }
            for (pos, &idx) in path.iter().enumerate() {
                if result[idx].is_some() {
                    continue;
                }
                let prev = anchors.iter().rev().find(|(a, _)| *a < pos);
                let next = anchors.iter().find(|(a, _)| *a > pos);
                result[idx] = match (prev, next) {
                    (Some(&(pa, pp)), Some(&(na, np))) => {
                        // Interpolate on time when available, else on index.
                        let t0 = self.records[path[pa]].time;
                        let t1 = self.records[path[na]].time;
                        let t = self.records[idx].time;
                        let fraction = if (t1 - t0).abs() > f64::EPSILON {
                            ((t - t0) / (t1 - t0)).clamp(0.0, 1.0)
                        } else {
                            (pos - pa) as f64 / (na - pa) as f64
                        };
                        Some(pp.lerp(np, fraction))
                    }
                    (Some(&(_, pp)), None) => Some(pp),
                    (None, Some(&(_, np))) => Some(np),
                    (None, None) => None,
                };
            }
        }
        result
    }
}

/// A fully-imputed (dense) radio map: every record has a complete fingerprint
/// and a location. This is the input expected by the online location
/// estimation algorithms (KNN, WKNN, random forest).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseRadioMap {
    fingerprints: Vec<Vec<f64>>,
    locations: Vec<Point>,
    num_aps: usize,
}

impl DenseRadioMap {
    /// Creates a dense radio map.
    ///
    /// # Panics
    /// Panics if the number of fingerprints and locations differ, or if any
    /// fingerprint has the wrong dimensionality.
    pub fn new(fingerprints: Vec<Vec<f64>>, locations: Vec<Point>, num_aps: usize) -> Self {
        assert_eq!(
            fingerprints.len(),
            locations.len(),
            "fingerprint/location count mismatch"
        );
        for (i, f) in fingerprints.iter().enumerate() {
            assert_eq!(f.len(), num_aps, "dense fingerprint {i} has wrong length");
        }
        Self {
            fingerprints,
            locations,
            num_aps,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Returns `true` when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// Number of access points.
    pub fn num_aps(&self) -> usize {
        self.num_aps
    }

    /// The dense fingerprints.
    pub fn fingerprints(&self) -> &[Vec<f64>] {
        &self.fingerprints
    }

    /// The locations, parallel to [`DenseRadioMap::fingerprints`].
    pub fn locations(&self) -> &[Point] {
        &self.locations
    }

    /// The `(fingerprint, location)` pair at `index`.
    pub fn entry(&self, index: usize) -> (&[f64], Point) {
        (&self.fingerprints[index], self.locations[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(values: &[Option<f64>]) -> Fingerprint {
        Fingerprint::new(values.to_vec())
    }

    fn sample_map() -> RadioMap {
        // Two paths; path 0 has RPs at its ends only.
        let records = vec![
            RadioMapRecord::new(
                fp(&[Some(-70.0), None, Some(-76.0)]),
                Some(Point::new(0.0, 0.0)),
                0.0,
                0,
            ),
            RadioMapRecord::new(fp(&[Some(-71.0), None, None]), None, 2.0, 0),
            RadioMapRecord::new(fp(&[None, None, Some(-80.0)]), None, 6.0, 0),
            RadioMapRecord::new(
                fp(&[None, Some(-77.0), None]),
                Some(Point::new(8.0, 4.0)),
                8.0,
                0,
            ),
            RadioMapRecord::new(
                fp(&[Some(-60.0), None, None]),
                Some(Point::new(20.0, 20.0)),
                0.0,
                1,
            ),
            RadioMapRecord::new(fp(&[None, None, None]), None, 5.0, 1),
        ];
        RadioMap::new(records, 3)
    }

    #[test]
    fn basic_counts() {
        let map = sample_map();
        assert_eq!(map.len(), 6);
        assert_eq!(map.num_aps(), 3);
        assert_eq!(map.num_paths(), 2);
        assert_eq!(map.observed_rp_count(), 3);
        assert!((map.missing_rp_rate() - 0.5).abs() < 1e-12);
        // 18 cells, observed: 2 + 1 + 1 + 1 + 1 + 0 = 6 -> missing 12/18.
        assert!((map.missing_rssi_rate() - 12.0 / 18.0).abs() < 1e-12);
        assert_eq!(map.observed_rssi_count(), 6);
    }

    #[test]
    fn path_grouping_preserves_order() {
        let map = sample_map();
        let paths = map.path_record_indices();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec![0, 1, 2, 3]);
        assert_eq!(paths[1], vec![4, 5]);
    }

    #[test]
    fn rp_interpolation_is_time_weighted() {
        let map = sample_map();
        let rps = map.interpolate_rps();
        // Record 1 at t=2 between anchors t=0 (0,0) and t=8 (8,4): 25% along.
        let p1 = rps[1].unwrap();
        assert!((p1.x - 2.0).abs() < 1e-9 && (p1.y - 1.0).abs() < 1e-9);
        // Record 2 at t=6: 75% along.
        let p2 = rps[2].unwrap();
        assert!((p2.x - 6.0).abs() < 1e-9 && (p2.y - 3.0).abs() < 1e-9);
        // Observed RPs pass through unchanged.
        assert_eq!(rps[0], Some(Point::new(0.0, 0.0)));
        // Path 1: trailing record copies the only anchor.
        assert_eq!(rps[5], Some(Point::new(20.0, 20.0)));
    }

    #[test]
    fn interpolation_with_no_anchor_stays_none() {
        let records = vec![
            RadioMapRecord::new(Fingerprint::empty(2), None, 0.0, 0),
            RadioMapRecord::new(Fingerprint::empty(2), None, 1.0, 0),
        ];
        let map = RadioMap::new(records, 2);
        assert!(map.interpolate_rps().iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "expected 3")]
    fn new_rejects_mismatched_dimensions() {
        let records = vec![RadioMapRecord::new(Fingerprint::empty(2), None, 0.0, 0)];
        let _ = RadioMap::new(records, 3);
    }

    #[test]
    fn push_and_empty() {
        let mut map = RadioMap::empty(2);
        assert!(map.is_empty());
        assert_eq!(map.missing_rssi_rate(), 0.0);
        map.push(RadioMapRecord::new(Fingerprint::empty(2), None, 0.0, 0));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn dense_radio_map_accessors() {
        let dense = DenseRadioMap::new(
            vec![vec![-70.0, -80.0], vec![-60.0, -90.0]],
            vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
            2,
        );
        assert_eq!(dense.len(), 2);
        assert_eq!(dense.num_aps(), 2);
        let (f, l) = dense.entry(1);
        assert_eq!(f, &[-60.0, -90.0]);
        assert_eq!(l, Point::new(1.0, 1.0));
        assert!(!dense.is_empty());
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn dense_radio_map_rejects_mismatch() {
        let _ = DenseRadioMap::new(vec![vec![0.0]], vec![], 1);
    }
}
