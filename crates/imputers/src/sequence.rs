//! Shared sequence preparation for the neural imputers (BRITS, SSGAN, BiSIM).
//!
//! Radio-map records on the same survey path form a temporally correlated
//! sequence. This module normalises RSSIs and locations into a stable numeric
//! range, computes the time-lag vectors of Eq. 1, and slices each path into
//! fixed-length subsequences (the paper uses `T = 5`).

use rm_geometry::Point;
use rm_radiomap::{MaskMatrix, RadioMap, MNAR_FILL_VALUE};

use crate::fill_mnars;

/// Normalisation parameters mapping physical units into a range suited to
/// neural-network training, and back.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalization {
    /// Minimum observed x coordinate.
    pub x_offset: f64,
    /// Minimum observed y coordinate.
    pub y_offset: f64,
    /// Scale dividing the coordinates (the larger venue extent).
    pub location_scale: f64,
    /// Scale dividing the time lags.
    pub time_scale: f64,
}

impl Normalization {
    /// Derives normalisation parameters from the observed RPs of a radio map.
    pub fn from_map(map: &RadioMap) -> Self {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for record in map.records() {
            if let Some(p) = record.rp {
                min = min.min(p);
                max = max.max(p);
                any = true;
            }
        }
        if !any {
            return Self {
                x_offset: 0.0,
                y_offset: 0.0,
                location_scale: 1.0,
                time_scale: 10.0,
            };
        }
        let extent = (max.x - min.x).max(max.y - min.y).max(1.0);
        Self {
            x_offset: min.x,
            y_offset: min.y,
            location_scale: extent,
            time_scale: 10.0,
        }
    }

    /// Maps an RSSI in `[-100, 0]` dBm into `[0, 1]`.
    pub fn normalize_rssi(&self, v: f64) -> f64 {
        (v - MNAR_FILL_VALUE) / 100.0
    }

    /// Inverse of [`Normalization::normalize_rssi`], clamped to the physical
    /// range.
    pub fn denormalize_rssi(&self, v: f64) -> f64 {
        (v * 100.0 + MNAR_FILL_VALUE).clamp(MNAR_FILL_VALUE, 0.0)
    }

    /// Maps a location into roughly `[0, 1]²`.
    pub fn normalize_point(&self, p: Point) -> (f64, f64) {
        (
            (p.x - self.x_offset) / self.location_scale,
            (p.y - self.y_offset) / self.location_scale,
        )
    }

    /// Inverse of [`Normalization::normalize_point`].
    pub fn denormalize_point(&self, x: f64, y: f64) -> Point {
        Point::new(
            x * self.location_scale + self.x_offset,
            y * self.location_scale + self.y_offset,
        )
    }

    /// Maps a time lag in seconds into normalised units.
    pub fn normalize_lag(&self, lag: f64) -> f64 {
        lag / self.time_scale
    }
}

/// One fixed-length subsequence of a survey path, fully prepared for the
/// neural imputers (Table IV of the paper shows the mask and time-lag inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct PathSequence {
    /// Original record index of each step.
    pub record_indices: Vec<usize>,
    /// Collection times (seconds) of each step.
    pub times: Vec<f64>,
    /// Normalised dense fingerprints (missing entries are 0).
    pub fingerprints: Vec<Vec<f64>>,
    /// Fingerprint masks `m_i`: 1 for observed (including MNAR-filled), 0 for MAR.
    pub fingerprint_masks: Vec<Vec<f64>>,
    /// Normalised time-lag vectors `δ_i` (Eq. 1).
    pub time_lags: Vec<Vec<f64>>,
    /// Normalised RP coordinates (0, 0 when missing).
    pub rps: Vec<(f64, f64)>,
    /// RP masks `k_i`: 1 when the RP is observed, 0 otherwise.
    pub rp_masks: Vec<f64>,
}

impl PathSequence {
    /// Sequence length.
    pub fn len(&self) -> usize {
        self.record_indices.len()
    }

    /// Returns `true` for an empty sequence.
    pub fn is_empty(&self) -> bool {
        self.record_indices.is_empty()
    }

    /// The reversed sequence used for the backward pass of the bidirectional
    /// models: every per-step vector is reversed and the time-lag vectors are
    /// recomputed with Eq. 1 over the reversed time order.
    pub fn reversed(&self, norm: &Normalization) -> PathSequence {
        let len = self.len();
        let rev = |i: usize| len - 1 - i;
        let mut out = PathSequence {
            record_indices: (0..len).map(|i| self.record_indices[rev(i)]).collect(),
            times: (0..len).map(|i| self.times[rev(i)]).collect(),
            fingerprints: (0..len)
                .map(|i| self.fingerprints[rev(i)].clone())
                .collect(),
            fingerprint_masks: (0..len)
                .map(|i| self.fingerprint_masks[rev(i)].clone())
                .collect(),
            time_lags: Vec::with_capacity(len),
            rps: (0..len).map(|i| self.rps[rev(i)]).collect(),
            rp_masks: (0..len).map(|i| self.rp_masks[rev(i)]).collect(),
        };
        let num_aps = self.fingerprints.first().map(Vec::len).unwrap_or(0);
        for step in 0..len {
            let lag = if step == 0 {
                vec![0.0; num_aps]
            } else {
                let dt = (out.times[step] - out.times[step - 1]).abs();
                (0..num_aps)
                    .map(|ap| {
                        if out.fingerprint_masks[step - 1][ap] > 0.5 {
                            norm.normalize_lag(dt)
                        } else {
                            out.time_lags[step - 1][ap] + norm.normalize_lag(dt)
                        }
                    })
                    .collect()
            };
            out.time_lags.push(lag);
        }
        out
    }
}

/// Builds the normalised, MNAR-filled, fixed-length sequences for every survey
/// path of the radio map. Paths longer than `max_len` are sliced into
/// consecutive chunks (the paper slices to `T = 5`); single-record chunks are
/// kept (the models handle length-1 sequences).
pub fn build_sequences(
    map: &RadioMap,
    mask: &MaskMatrix,
    max_len: usize,
    norm: &Normalization,
) -> Vec<PathSequence> {
    let max_len = max_len.max(1);
    let filled = fill_mnars(map, mask);
    let num_aps = map.num_aps();
    let mut sequences = Vec::new();

    for path in map.path_record_indices() {
        for chunk in path.chunks(max_len) {
            let mut seq = PathSequence {
                record_indices: chunk.to_vec(),
                times: Vec::with_capacity(chunk.len()),
                fingerprints: Vec::with_capacity(chunk.len()),
                fingerprint_masks: Vec::with_capacity(chunk.len()),
                time_lags: Vec::with_capacity(chunk.len()),
                rps: Vec::with_capacity(chunk.len()),
                rp_masks: Vec::with_capacity(chunk.len()),
            };
            for (step, &record_index) in chunk.iter().enumerate() {
                let record = map.record(record_index);
                seq.times.push(record.time);
                // Fingerprint + mask (MNAR entries are already filled, MAR stay missing).
                let mut fingerprint = vec![0.0; num_aps];
                let mut fp_mask = vec![0.0; num_aps];
                for ap in 0..num_aps {
                    if let Some(v) = filled[record_index][ap] {
                        fingerprint[ap] = norm.normalize_rssi(v);
                        fp_mask[ap] = 1.0;
                    }
                }
                seq.fingerprints.push(fingerprint);
                seq.fingerprint_masks.push(fp_mask);
                // Time-lag vector (Eq. 1).
                let lag = if step == 0 {
                    vec![0.0; num_aps]
                } else {
                    let dt = record.time - map.record(chunk[step - 1]).time;
                    let previous_mask = &seq.fingerprint_masks[step - 1];
                    let previous_lag = &seq.time_lags[step - 1];
                    (0..num_aps)
                        .map(|ap| {
                            if previous_mask[ap] > 0.5 {
                                norm.normalize_lag(dt)
                            } else {
                                previous_lag[ap] + norm.normalize_lag(dt)
                            }
                        })
                        .collect()
                };
                seq.time_lags.push(lag);
                // RP + mask.
                match record.rp {
                    Some(p) => {
                        seq.rps.push(norm.normalize_point(p));
                        seq.rp_masks.push(1.0);
                    }
                    None => {
                        seq.rps.push((0.0, 0.0));
                        seq.rp_masks.push(0.0);
                    }
                }
            }
            sequences.push(seq);
        }
    }
    sequences
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_radiomap::{EntryKind, Fingerprint, RadioMapRecord};

    fn map_and_mask() -> (RadioMap, MaskMatrix) {
        // Mirrors Table III/IV structure: 5 records on one path.
        let mk = |values: Vec<Option<f64>>, rp: Option<Point>, t: f64| {
            RadioMapRecord::new(Fingerprint::new(values), rp, t, 0)
        };
        let map = RadioMap::new(
            vec![
                mk(
                    vec![Some(-70.0), Some(-83.0)],
                    Some(Point::new(0.0, 0.0)),
                    1.0,
                ),
                mk(vec![Some(-71.0), None], None, 3.0),
                mk(vec![None, None], Some(Point::new(4.0, 2.0)), 8.0),
                mk(vec![Some(-74.0), Some(-77.0)], None, 12.0),
                mk(vec![None, None], Some(Point::new(8.0, 8.0)), 16.0),
            ],
            2,
        );
        let mut mask = MaskMatrix::all_observed(5, 2);
        mask.set(1, 1, EntryKind::Mar);
        mask.set(2, 0, EntryKind::Mnar);
        mask.set(2, 1, EntryKind::Mar);
        mask.set(4, 0, EntryKind::Mar);
        mask.set(4, 1, EntryKind::Mnar);
        (map, mask)
    }

    #[test]
    fn normalization_roundtrips() {
        let (map, _) = map_and_mask();
        let norm = Normalization::from_map(&map);
        assert!((norm.denormalize_rssi(norm.normalize_rssi(-73.5)) + 73.5).abs() < 1e-9);
        let p = Point::new(4.0, 2.0);
        let (x, y) = norm.normalize_point(p);
        assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        assert!(norm.denormalize_point(x, y).distance(p) < 1e-9);
    }

    #[test]
    fn normalization_of_empty_map_is_identityish() {
        let norm = Normalization::from_map(&RadioMap::empty(2));
        assert_eq!(norm.location_scale, 1.0);
        assert_eq!(norm.normalize_rssi(MNAR_FILL_VALUE), 0.0);
        assert_eq!(norm.normalize_rssi(0.0), 1.0);
    }

    #[test]
    fn sequences_follow_the_time_lag_recurrence() {
        let (map, mask) = map_and_mask();
        let norm = Normalization::from_map(&map);
        let sequences = build_sequences(&map, &mask, 5, &norm);
        assert_eq!(sequences.len(), 1);
        let seq = &sequences[0];
        assert_eq!(seq.len(), 5);
        // Step 0: all lags zero.
        assert_eq!(seq.time_lags[0], vec![0.0, 0.0]);
        // Step 1 (t=3, dt=2): both APs observed at step 0 -> lag = 0.2 (2 s / 10).
        assert!((seq.time_lags[1][0] - 0.2).abs() < 1e-9);
        assert!((seq.time_lags[1][1] - 0.2).abs() < 1e-9);
        // Step 2 (t=8, dt=5): AP0 observed at step 1 -> 0.5; AP1 MAR at step 1 ->
        // accumulate 0.2 + 0.5.
        assert!((seq.time_lags[2][0] - 0.5).abs() < 1e-9);
        assert!((seq.time_lags[2][1] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn masks_distinguish_mar_from_mnar_filled() {
        let (map, mask) = map_and_mask();
        let norm = Normalization::from_map(&map);
        let seq = &build_sequences(&map, &mask, 5, &norm)[0];
        // Record 2: AP0 is MNAR (filled with -100 -> mask 1, value 0 normalised),
        // AP1 is MAR (mask 0).
        assert_eq!(seq.fingerprint_masks[2][0], 1.0);
        assert_eq!(seq.fingerprints[2][0], 0.0);
        assert_eq!(seq.fingerprint_masks[2][1], 0.0);
        // RP masks.
        assert_eq!(seq.rp_masks[0], 1.0);
        assert_eq!(seq.rp_masks[1], 0.0);
    }

    #[test]
    fn reversed_sequence_flips_order_and_recomputes_lags() {
        let (map, mask) = map_and_mask();
        let norm = Normalization::from_map(&map);
        let seq = &build_sequences(&map, &mask, 5, &norm)[0];
        let rev = seq.reversed(&norm);
        assert_eq!(rev.record_indices, vec![4, 3, 2, 1, 0]);
        assert_eq!(rev.time_lags[0], vec![0.0, 0.0]);
        // Reversed step 1 goes from t=16 to t=12 (dt=4): AP0 MAR at reversed
        // step 0 -> accumulate; AP1 MNAR-filled (mask 1) -> 0.4.
        assert!((rev.time_lags[1][1] - 0.4).abs() < 1e-9);
        assert!((rev.time_lags[1][0] - 0.4).abs() < 1e-9);
        // Round-trip: reversing twice restores the original order.
        let back = rev.reversed(&norm);
        assert_eq!(back.record_indices, seq.record_indices);
        assert_eq!(back.fingerprints, seq.fingerprints);
    }

    #[test]
    fn long_paths_are_sliced() {
        let (map, mask) = map_and_mask();
        let norm = Normalization::from_map(&map);
        let sequences = build_sequences(&map, &mask, 2, &norm);
        assert_eq!(sequences.len(), 3);
        assert_eq!(sequences[0].len(), 2);
        assert_eq!(sequences[2].len(), 1);
        // Record indices cover every record exactly once.
        let mut all: Vec<usize> = sequences
            .iter()
            .flat_map(|s| s.record_indices.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }
}
