//! MF — matrix-factorization (matrix completion) imputation.
//!
//! The radio map is viewed as a partially observed `N × (D + 2)` matrix
//! (RSSI columns plus the two scaled RP coordinates) and factorised as
//! `U · Vᵀ` with a small latent rank. The factors are fitted by alternating
//! ridge-regularised least squares on the observed entries; the reconstruction
//! fills the missing entries.

use std::cmp::Ordering;

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rm_geometry::Point;
use rm_radiomap::{MaskMatrix, RadioMap, MNAR_FILL_VALUE};

use crate::{fill_mnars, ImputedRadioMap, Imputer};

/// Configuration for [`MatrixFactorization`].
#[derive(Debug, Clone)]
pub struct MatrixFactorizationConfig {
    /// Latent rank of the factorisation.
    pub rank: usize,
    /// Number of alternating-least-squares sweeps.
    pub iterations: usize,
    /// Ridge regularisation strength.
    pub lambda: f64,
    /// RNG seed for factor initialisation.
    pub seed: u64,
    /// Worker threads for the ALS sweeps (`0` = auto). Within one half-sweep
    /// every factor row is solved against the *other*, frozen factor, so the
    /// rows fan out independently and the result is bit-identical at any
    /// thread count.
    pub threads: usize,
}

impl Default for MatrixFactorizationConfig {
    fn default() -> Self {
        Self {
            rank: 8,
            iterations: 15,
            lambda: 0.5,
            seed: 23,
            threads: 0,
        }
    }
}

/// The matrix-factorization imputer.
#[derive(Debug, Clone, Default)]
pub struct MatrixFactorization {
    /// Algorithm configuration.
    pub config: MatrixFactorizationConfig,
}

impl MatrixFactorization {
    /// Creates an MF imputer with the given configuration.
    pub fn new(config: MatrixFactorizationConfig) -> Self {
        Self { config }
    }
}

/// Scale applied to RP coordinates so they share the numeric range of the
/// normalised RSSIs.
const RP_SCALE: f64 = 0.01;

impl Imputer for MatrixFactorization {
    fn impute(&self, map: &RadioMap, mask: &MaskMatrix) -> ImputedRadioMap {
        let n = map.len();
        let d = map.num_aps();
        if n == 0 {
            return ImputedRadioMap {
                fingerprints: Vec::new(),
                locations: Vec::new(),
            };
        }
        let num_cols = d + 2;
        let rssi = fill_mnars(map, mask);

        // Observed entries, normalised: RSSIs to [0, 1], coordinates scaled.
        let mut observed: Vec<Vec<Option<f64>>> = vec![vec![None; num_cols]; n];
        for i in 0..n {
            for ap in 0..d {
                if let Some(v) = rssi[i][ap] {
                    observed[i][ap] = Some((v - MNAR_FILL_VALUE) / 100.0);
                }
            }
            if let Some(p) = map.record(i).rp {
                observed[i][d] = Some(p.x * RP_SCALE);
                observed[i][d + 1] = Some(p.y * RP_SCALE);
            }
        }

        let rank = self.config.rank.max(1);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut u: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..rank).map(|_| rng.gen_range(-0.1..0.1)).collect())
            .collect();
        let mut v: Vec<Vec<f64>> = (0..num_cols)
            .map(|_| (0..rank).map(|_| rng.gen_range(-0.1..0.1)).collect())
            .collect();

        // Alternating least squares. Each half-sweep solves every row of one
        // factor against the other factor frozen, so the per-row solves are
        // independent: they fan out over the pool in input order and the
        // sweep result does not depend on the thread count (a row either
        // keeps its previous value or is replaced by a pure function of the
        // frozen factor).
        let threads = self.config.threads;
        for _ in 0..self.config.iterations {
            // Fix V, solve each row of U.
            u = rm_runtime::par_indices(threads, n, |i| {
                let cols: Vec<usize> = (0..num_cols)
                    .filter(|&c| observed[i][c].is_some())
                    .collect();
                if cols.is_empty() {
                    return u[i].clone();
                }
                solve_factor(
                    &cols.iter().map(|&c| v[c].clone()).collect::<Vec<_>>(),
                    &cols
                        .iter()
                        .map(|&c| observed[i][c].expect("observed"))
                        .collect::<Vec<_>>(),
                    rank,
                    self.config.lambda,
                )
            });
            // Fix U, solve each row of V.
            v = rm_runtime::par_indices(threads, num_cols, |c| {
                let rows: Vec<usize> = (0..n).filter(|&i| observed[i][c].is_some()).collect();
                if rows.is_empty() {
                    return v[c].clone();
                }
                solve_factor(
                    &rows.iter().map(|&i| u[i].clone()).collect::<Vec<_>>(),
                    &rows
                        .iter()
                        .map(|&i| observed[i][c].expect("observed"))
                        .collect::<Vec<_>>(),
                    rank,
                    self.config.lambda,
                )
            });
        }

        // Reconstruct.
        let reconstruct =
            |i: usize, c: usize| -> f64 { u[i].iter().zip(v[c].iter()).map(|(a, b)| a * b).sum() };
        let fingerprints: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|c| match observed[i][c] {
                        Some(norm) => norm * 100.0 + MNAR_FILL_VALUE,
                        None => (reconstruct(i, c) * 100.0 + MNAR_FILL_VALUE)
                            .clamp(MNAR_FILL_VALUE, 0.0),
                    })
                    .collect()
            })
            .collect();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| match map.record(i).rp {
                Some(p) => Some(p),
                None => Some(Point::new(
                    reconstruct(i, d) / RP_SCALE,
                    reconstruct(i, d + 1) / RP_SCALE,
                )),
            })
            .collect();
        ImputedRadioMap {
            fingerprints,
            locations,
        }
    }

    fn name(&self) -> &'static str {
        "MF"
    }
}

/// Solves `min_w Σ (xᵀ_j w - y_j)² + λ‖w‖²` where `x_j` are the given factor
/// rows — a small ridge system of size `rank`.
fn solve_factor(rows: &[Vec<f64>], targets: &[f64], rank: usize, lambda: f64) -> Vec<f64> {
    let mut xtx = vec![vec![0.0f64; rank]; rank];
    let mut xty = vec![0.0f64; rank];
    for (x, &y) in rows.iter().zip(targets.iter()) {
        for i in 0..rank {
            xty[i] += x[i] * y;
            for j in 0..rank {
                xtx[i][j] += x[i] * x[j];
            }
        }
    }
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += lambda;
    }
    // Gaussian elimination (the system is tiny: rank × rank).
    let n = rank;
    let mut a = xtx;
    let mut b = xty;
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .unwrap_or(Ordering::Equal)
            })
            .unwrap_or(col);
        if a[pivot][col].abs() < 1e-12 {
            return vec![0.0; rank];
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= factor * a[col][c];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut w = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for c in (row + 1)..n {
            sum -= a[row][c] * w[c];
        }
        w[row] = sum / a[row][row];
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_radiomap::{EntryKind, Fingerprint, RadioMapRecord};

    /// A rank-1-ish radio map: fingerprints scale linearly along the path.
    fn low_rank_map() -> (RadioMap, MaskMatrix) {
        let mut records = Vec::new();
        for i in 0..30 {
            let base = -40.0 - i as f64;
            let values = vec![
                Some(base),
                if i % 5 == 0 { None } else { Some(base - 5.0) },
                Some(base - 10.0),
            ];
            records.push(RadioMapRecord::new(
                Fingerprint::new(values),
                Some(Point::new(i as f64, 2.0)),
                i as f64,
                0,
            ));
        }
        let map = RadioMap::new(records, 3);
        let mut mask = MaskMatrix::all_observed(30, 3);
        for i in (0..30).step_by(5) {
            mask.set(i, 1, EntryKind::Mar);
        }
        (map, mask)
    }

    #[test]
    fn mf_reconstructs_low_rank_structure() {
        let (map, mask) = low_rank_map();
        let out = MatrixFactorization::default().impute(&map, &mask);
        let mut total_error = 0.0;
        let mut count = 0;
        for i in (0..30).step_by(5) {
            let expected = -40.0 - i as f64 - 5.0;
            total_error += (out.rssi(i, 1) - expected).abs();
            count += 1;
        }
        let mae = total_error / count as f64;
        assert!(mae < 12.0, "MF MAE {mae} too high");
    }

    #[test]
    fn mf_preserves_observed_entries_and_rps() {
        let (map, mask) = low_rank_map();
        let out = MatrixFactorization::default().impute(&map, &mask);
        assert_eq!(out.rssi(1, 0), -41.0);
        assert_eq!(out.locations[3], Some(Point::new(3.0, 2.0)));
        assert_eq!(MatrixFactorization::default().name(), "MF");
    }

    #[test]
    fn mf_imputes_missing_rps_with_finite_values() {
        let (mut map, mask) = low_rank_map();
        map.records_mut()[7].rp = None;
        let out = MatrixFactorization::default().impute(&map, &mask);
        let p = out.locations[7].unwrap();
        assert!(p.is_finite());
    }

    #[test]
    fn mf_handles_empty_map() {
        let out = MatrixFactorization::default()
            .impute(&RadioMap::empty(2), &MaskMatrix::all_observed(0, 2));
        assert!(out.is_empty());
    }

    #[test]
    fn imputed_rssis_stay_in_valid_range() {
        let (map, mask) = low_rank_map();
        let out = MatrixFactorization::default().impute(&map, &mask);
        for row in &out.fingerprints {
            for &v in row {
                assert!((MNAR_FILL_VALUE..=0.0).contains(&v));
            }
        }
    }
}
