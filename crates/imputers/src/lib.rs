//! Radio-map data imputers.
//!
//! Every imputer consumes a sparse [`RadioMap`] together with the
//! [`MaskMatrix`] produced by a missing-RSSI differentiator, fills the
//! MNAR entries with −100 dBm, and produces a fully dense radio map
//! (fingerprints and locations). The baselines of the paper's evaluation
//! (Section V-C) are implemented here:
//!
//! * [`CaseDeletion`] (CD), [`LinearInterpolation`] (LI) and
//!   [`SemiSupervised`] (SL) — traditional imputers used in fingerprinting,
//! * [`Mice`] and [`MatrixFactorization`] (MF) — autocorrelation-based
//!   imputers,
//! * [`Brits`] and [`Ssgan`] — neural sequence imputers.
//!
//! The paper's own model, BiSIM, lives in the `rm-bisim` crate and implements
//! the same [`Imputer`] trait.

pub mod brits;
pub mod mf;
pub mod mice;
pub mod sequence;
pub mod simple;
pub mod snapshot;
pub mod ssgan;

/// Minimum-work gates below which the imputers' internal fan-outs stay
/// serial.
///
/// A fan-out only pays off once the work per call amortises the dispatch
/// cost. The PR 2 gates were sized against *scoped thread spawning* (~24–48
/// µs round-trip for a small 2-wide `par_map`, `par_map_*_scoped_t2` in
/// `bench_runtime`); the persistent pool in `rm-runtime` cut that to ≤~3 µs
/// (`par_map_*_pool_t2`: 64-item map 38.91 → 3.06 µs, 8-item 33.31 → 0.96
/// µs on the shipped implementation — a ~13–35× reduction; all recorded
/// runs live in `BENCH_baseline.json` `pr4`), so each gate below is lowered
/// by roughly an order of magnitude, keeping the same safety margin of
/// ~5–10× dispatch cost worth of work behind every fork. Changing a gate never changes results, only
/// which side of the serial/parallel fork runs: both sides are bit-identical
/// by the `rm-runtime` determinism contract.
///
/// The constants are *reference* values sized on the benchmark machine. The
/// fork sites consult them through accessor functions
/// ([`gates::mice_predictor_scan_min_cells`] and friends) that rescale the
/// reference by the once-per-process measured dispatch cost
/// ([`rm_runtime::measured_dispatch_micros`]), so a machine with a slower
/// pool keeps the same work-per-dispatch safety margin instead of forking
/// too eagerly. Serial processes (`RM_THREADS=1`) and `RM_GATE_PROBE=0`
/// skip the probe and use the reference constants verbatim.
pub mod gates {
    /// [`Mice`](crate::Mice) predictor selection fans the per-candidate
    /// correlation scans out only when `candidate_columns × observed_rows`
    /// reaches this many cells (each cell is a handful of flops, ~2–5 ns;
    /// the product approximates the total scan work). 8_192 cells ≈ 20–40 µs
    /// of work ≈ 6–10× the ~3.7 µs pool dispatch; the scoped-spawn era value
    /// was 65_536.
    pub const MICE_PREDICTOR_SCAN_MIN_CELLS: usize = 8_192;

    /// [`Mice`](crate::Mice) fans the per-row ridge predictions out only for
    /// at least this many missing rows (a prediction is ~0.1 µs of
    /// multiply-adds). 128 rows ≈ 13 µs ≈ 3.5× the pool dispatch — the
    /// 2-wide break-even is ~2× — where the scoped-spawn era needed 512.
    pub const MICE_PREDICTION_MIN_ROWS: usize = 128;

    /// The bidirectional sequence imputers ([`Brits`](crate::Brits)) reverse
    /// their training sequences in parallel only from this many sequences up
    /// (one reversal is a few µs of cloning). 16 reversals ≈ 50 µs ≈ 13× the
    /// pool dispatch; the scoped-spawn era value was 64.
    pub const BRITS_REVERSAL_MIN_SEQUENCES: usize = 16;

    /// The dispatch cost (µs) the reference constants above were sized
    /// against — the `par_map_*_pool_t2` reading recorded in
    /// `BENCH_baseline.json` `pr4`.
    pub const REFERENCE_DISPATCH_MICROS: f64 = 3.7;

    /// How far the measured/reference dispatch ratio may move a gate in
    /// either direction. A slower pool than the reference machine raises the
    /// gates (more work required before forking); a faster one lowers them.
    /// The clamp keeps a wildly noisy probe reading from swinging a gate
    /// outside the regime its sizing analysis covered.
    const DISPATCH_RATIO_CLAMP: (f64, f64) = (0.25, 8.0);

    /// Scales a reference gate by a measured dispatch cost: the gate grows
    /// (or shrinks) linearly with the measured/reference ratio, clamped to
    /// [`DISPATCH_RATIO_CLAMP`], with a floor of 1. Pure — the probe side
    /// effects live in [`rm_runtime::measured_dispatch_micros`] — so the
    /// scaling law is unit-testable without touching the environment.
    pub fn scaled_threshold(base: usize, measured_micros: f64) -> usize {
        let (lo, hi) = DISPATCH_RATIO_CLAMP;
        let ratio = if measured_micros.is_finite() && measured_micros > 0.0 {
            (measured_micros / REFERENCE_DISPATCH_MICROS).clamp(lo, hi)
        } else {
            1.0
        };
        ((base as f64 * ratio).round() as usize).max(1)
    }

    /// Resolves a gate against the once-per-process dispatch probe: the
    /// reference constant scaled by the measured cost, or the constant
    /// verbatim when the probe is off (`RM_GATE_PROBE=0`) or the process is
    /// serial (`RM_THREADS=1` — pinned to the pre-probe behaviour exactly).
    fn probed(base: usize) -> usize {
        match rm_runtime::measured_dispatch_micros() {
            Some(measured) => scaled_threshold(base, measured),
            None => base,
        }
    }

    /// [`MICE_PREDICTOR_SCAN_MIN_CELLS`] adjusted for this machine's
    /// measured dispatch cost — what the MICE predictor-selection fork
    /// actually consults.
    pub fn mice_predictor_scan_min_cells() -> usize {
        probed(MICE_PREDICTOR_SCAN_MIN_CELLS)
    }

    /// [`MICE_PREDICTION_MIN_ROWS`] adjusted for this machine's measured
    /// dispatch cost.
    pub fn mice_prediction_min_rows() -> usize {
        probed(MICE_PREDICTION_MIN_ROWS)
    }

    /// [`BRITS_REVERSAL_MIN_SEQUENCES`] adjusted for this machine's
    /// measured dispatch cost.
    pub fn brits_reversal_min_sequences() -> usize {
        probed(BRITS_REVERSAL_MIN_SEQUENCES)
    }
}

pub use brits::{snapshot_resident_bytes, Brits, BritsConfig};
pub use mf::{MatrixFactorization, MatrixFactorizationConfig};
pub use mice::{Mice, MiceConfig};
pub use sequence::{build_sequences, Normalization, PathSequence};
pub use simple::{CaseDeletion, LinearInterpolation, SemiSupervised};
pub use ssgan::{Ssgan, SsganConfig};

use rm_geometry::Point;
use rm_radiomap::{DenseRadioMap, EntryKind, MaskMatrix, RadioMap, MNAR_FILL_VALUE};

/// The output of an imputer: a dense fingerprint per input record and, where
/// the imputer supports it, a location per input record. Record indices match
/// the input radio map.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputedRadioMap {
    /// Dense fingerprints, one per input record.
    pub fingerprints: Vec<Vec<f64>>,
    /// Imputed (or passed-through) locations; `None` when the imputer does not
    /// impute that record's location (e.g. case deletion).
    pub locations: Vec<Option<Point>>,
}

impl ImputedRadioMap {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Returns `true` when there are no records.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// The imputed RSSI of `(record, ap)`.
    pub fn rssi(&self, record: usize, ap: usize) -> f64 {
        self.fingerprints[record][ap]
    }

    /// Converts the result into a [`DenseRadioMap`] containing only the
    /// records that have a location — the radio map used by the online
    /// location-estimation algorithms.
    pub fn to_dense(&self, num_aps: usize) -> DenseRadioMap {
        let mut fingerprints = Vec::new();
        let mut locations = Vec::new();
        for (f, l) in self.fingerprints.iter().zip(self.locations.iter()) {
            if let Some(loc) = l {
                fingerprints.push(f.clone());
                locations.push(*loc);
            }
        }
        DenseRadioMap::new(fingerprints, locations, num_aps)
    }
}

/// A radio-map data imputer.
pub trait Imputer {
    /// Imputes the missing RSSIs and reference points of `map`, guided by the
    /// differentiator's `mask` (MNAR entries are filled with −100 dBm, MAR
    /// entries with model predictions).
    fn impute(&self, map: &RadioMap, mask: &MaskMatrix) -> ImputedRadioMap;

    /// Like [`Imputer::impute`], but additionally exports the trained
    /// inference snapshot as a flat list of named tensors — the weights a
    /// serving artifact persists alongside the imputed map. Imputers without
    /// a trained snapshot (the traditional baselines) return an empty list;
    /// model-based imputers export exactly the bits their inference path
    /// keeps resident (at the configured precision / snapshot dtype), so a
    /// decoded artifact reproduces the serving model bit for bit.
    fn impute_with_snapshot(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
    ) -> (ImputedRadioMap, Vec<rm_tensor::NamedTensor>) {
        (self.impute(map, mask), Vec::new())
    }

    /// Warm-start hook next to [`Imputer::impute_with_snapshot`]: resumes
    /// from a previously exported tensor snapshot instead of training from
    /// scratch.
    ///
    /// `warm` is a snapshot previously returned by
    /// [`Imputer::impute_with_snapshot`] (or this method) for a model of the
    /// same architecture. `fine_tune_epochs` bounds the additional training:
    /// `0` means pure inference replay — decode the weights and impute with
    /// them as-is, bit-identical to the run that exported them when the map
    /// is unchanged — while `n > 0` resumes mini-batch training for `n`
    /// epochs from the imported weights (a fresh optimizer; cheap
    /// incremental refresh, not a bitwise replay of longer training).
    ///
    /// The default implementation — and any imputer handed an empty,
    /// foreign, or shape-incompatible snapshot — falls back to the cold
    /// [`Imputer::impute_with_snapshot`] path, so warm-starting is always
    /// safe to attempt.
    fn impute_warm(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        warm: &[rm_tensor::NamedTensor],
        fine_tune_epochs: usize,
    ) -> (ImputedRadioMap, Vec<rm_tensor::NamedTensor>) {
        let _ = (warm, fine_tune_epochs);
        self.impute_with_snapshot(map, mask)
    }

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Fills the MNAR entries of every fingerprint with −100 dBm and returns the
/// resulting partially-dense matrix as `Option<f64>` values: MNARs and
/// observed entries are `Some`, MAR entries stay `None` for the model-based
/// imputers to predict.
pub fn fill_mnars(map: &RadioMap, mask: &MaskMatrix) -> Vec<Vec<Option<f64>>> {
    map.records()
        .iter()
        .enumerate()
        .map(|(i, record)| {
            (0..map.num_aps())
                .map(|ap| match record.fingerprint.get(ap) {
                    Some(v) => Some(v),
                    None => match mask.get(i, ap) {
                        EntryKind::Mnar => Some(MNAR_FILL_VALUE),
                        _ => None,
                    },
                })
                .collect()
        })
        .collect()
}

/// Fills every remaining missing entry of `values` with `fill` — the final
/// fallback used by imputers that do not predict certain entries.
pub fn densify(values: &[Vec<Option<f64>>], fill: f64) -> Vec<Vec<f64>> {
    values
        .iter()
        .map(|row| row.iter().map(|v| v.unwrap_or(fill)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_radiomap::{Fingerprint, RadioMapRecord};

    fn map_and_mask() -> (RadioMap, MaskMatrix) {
        let records = vec![
            RadioMapRecord::new(
                Fingerprint::new(vec![Some(-70.0), None]),
                Some(Point::new(0.0, 0.0)),
                0.0,
                0,
            ),
            RadioMapRecord::new(Fingerprint::new(vec![None, None]), None, 1.0, 0),
        ];
        let map = RadioMap::new(records, 2);
        let mut mask = MaskMatrix::all_observed(2, 2);
        mask.set(0, 1, EntryKind::Mar);
        mask.set(1, 0, EntryKind::Mnar);
        mask.set(1, 1, EntryKind::Mar);
        (map, mask)
    }

    #[test]
    fn fill_mnars_fills_only_mnars() {
        let (map, mask) = map_and_mask();
        let filled = fill_mnars(&map, &mask);
        assert_eq!(filled[0][0], Some(-70.0));
        assert_eq!(filled[0][1], None); // MAR stays open
        assert_eq!(filled[1][0], Some(MNAR_FILL_VALUE));
        assert_eq!(filled[1][1], None);
    }

    #[test]
    fn densify_fills_remaining_nulls() {
        let (map, mask) = map_and_mask();
        let dense = densify(&fill_mnars(&map, &mask), -88.0);
        assert_eq!(dense[0][1], -88.0);
        assert_eq!(dense[1][0], MNAR_FILL_VALUE);
    }

    #[test]
    fn scaled_threshold_follows_the_dispatch_ratio() {
        // At the reference cost the gate is the reference constant.
        assert_eq!(
            gates::scaled_threshold(16, gates::REFERENCE_DISPATCH_MICROS),
            16
        );
        // A 2× slower pool doubles the gate; a 2× faster pool halves it.
        assert_eq!(
            gates::scaled_threshold(16, gates::REFERENCE_DISPATCH_MICROS * 2.0),
            32
        );
        assert_eq!(
            gates::scaled_threshold(16, gates::REFERENCE_DISPATCH_MICROS / 2.0),
            8
        );
        // The ratio is clamped: absurd readings cannot push a gate outside
        // the analysed regime, and degenerate readings fall back to 1×.
        assert_eq!(gates::scaled_threshold(16, 1e9), 16 * 8);
        assert_eq!(gates::scaled_threshold(16, 0.0), 16);
        assert_eq!(gates::scaled_threshold(16, f64::NAN), 16);
        // A tiny base never scales to zero (a zero gate would always fork).
        assert_eq!(gates::scaled_threshold(1, 0.001), 1);
    }

    /// `RM_THREADS=1` pins the pre-probe behaviour exactly: serial processes
    /// never dispatch, so the probe returns `None` and the gates are the
    /// reference constants verbatim. (The CI thread matrix runs this test
    /// with `RM_THREADS=1`; at higher thread counts the probed gates must
    /// still land inside the clamp band around the reference.)
    #[test]
    fn probed_gates_pin_reference_constants_when_serial() {
        let cells = gates::mice_predictor_scan_min_cells();
        let rows = gates::mice_prediction_min_rows();
        let seqs = gates::brits_reversal_min_sequences();
        if rm_runtime::default_threads() <= 1 {
            assert_eq!(cells, gates::MICE_PREDICTOR_SCAN_MIN_CELLS);
            assert_eq!(rows, gates::MICE_PREDICTION_MIN_ROWS);
            assert_eq!(seqs, gates::BRITS_REVERSAL_MIN_SEQUENCES);
        } else {
            let in_band = |probed: usize, reference: usize| {
                probed >= reference / 4 && probed <= reference * 8
            };
            assert!(in_band(cells, gates::MICE_PREDICTOR_SCAN_MIN_CELLS));
            assert!(in_band(rows, gates::MICE_PREDICTION_MIN_ROWS));
            assert!(in_band(seqs, gates::BRITS_REVERSAL_MIN_SEQUENCES));
        }
        // The probe is cached once per process: repeated reads agree.
        assert_eq!(cells, gates::mice_predictor_scan_min_cells());
    }

    #[test]
    fn imputed_map_to_dense_drops_locationless_records() {
        let imputed = ImputedRadioMap {
            fingerprints: vec![vec![-70.0, -80.0], vec![-60.0, -90.0]],
            locations: vec![Some(Point::new(1.0, 2.0)), None],
        };
        assert_eq!(imputed.len(), 2);
        assert_eq!(imputed.rssi(1, 0), -60.0);
        let dense = imputed.to_dense(2);
        assert_eq!(dense.len(), 1);
        assert_eq!(dense.locations()[0], Point::new(1.0, 2.0));
    }
}
