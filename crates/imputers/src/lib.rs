//! Radio-map data imputers.
//!
//! Every imputer consumes a sparse [`RadioMap`] together with the
//! [`MaskMatrix`] produced by a missing-RSSI differentiator, fills the
//! MNAR entries with −100 dBm, and produces a fully dense radio map
//! (fingerprints and locations). The baselines of the paper's evaluation
//! (Section V-C) are implemented here:
//!
//! * [`CaseDeletion`] (CD), [`LinearInterpolation`] (LI) and
//!   [`SemiSupervised`] (SL) — traditional imputers used in fingerprinting,
//! * [`Mice`] and [`MatrixFactorization`] (MF) — autocorrelation-based
//!   imputers,
//! * [`Brits`] and [`Ssgan`] — neural sequence imputers.
//!
//! The paper's own model, BiSIM, lives in the `rm-bisim` crate and implements
//! the same [`Imputer`] trait.

pub mod brits;
pub mod mf;
pub mod mice;
pub mod sequence;
pub mod simple;
pub mod ssgan;

/// Minimum-work gates below which the imputers' internal fan-outs stay
/// serial.
///
/// A fan-out only pays off once the work per call amortises the dispatch
/// cost. The PR 2 gates were sized against *scoped thread spawning* (~24–48
/// µs round-trip for a small 2-wide `par_map`, `par_map_*_scoped_t2` in
/// `bench_runtime`); the persistent pool in `rm-runtime` cut that to ≤~3 µs
/// (`par_map_*_pool_t2`: 64-item map 38.91 → 3.06 µs, 8-item 33.31 → 0.96
/// µs on the shipped implementation — a ~13–35× reduction; all recorded
/// runs live in `BENCH_baseline.json` `pr4`), so each gate below is lowered
/// by roughly an order of magnitude, keeping the same safety margin of
/// ~5–10× dispatch cost worth of work behind every fork. Changing a gate never changes results, only
/// which side of the serial/parallel fork runs: both sides are bit-identical
/// by the `rm-runtime` determinism contract.
pub mod gates {
    /// [`Mice`](crate::Mice) predictor selection fans the per-candidate
    /// correlation scans out only when `candidate_columns × observed_rows`
    /// reaches this many cells (each cell is a handful of flops, ~2–5 ns;
    /// the product approximates the total scan work). 8_192 cells ≈ 20–40 µs
    /// of work ≈ 6–10× the ~3.7 µs pool dispatch; the scoped-spawn era value
    /// was 65_536.
    pub const MICE_PREDICTOR_SCAN_MIN_CELLS: usize = 8_192;

    /// [`Mice`](crate::Mice) fans the per-row ridge predictions out only for
    /// at least this many missing rows (a prediction is ~0.1 µs of
    /// multiply-adds). 128 rows ≈ 13 µs ≈ 3.5× the pool dispatch — the
    /// 2-wide break-even is ~2× — where the scoped-spawn era needed 512.
    pub const MICE_PREDICTION_MIN_ROWS: usize = 128;

    /// The bidirectional sequence imputers ([`Brits`](crate::Brits)) reverse
    /// their training sequences in parallel only from this many sequences up
    /// (one reversal is a few µs of cloning). 16 reversals ≈ 50 µs ≈ 13× the
    /// pool dispatch; the scoped-spawn era value was 64.
    pub const BRITS_REVERSAL_MIN_SEQUENCES: usize = 16;
}

pub use brits::{snapshot_resident_bytes, Brits, BritsConfig};
pub use mf::{MatrixFactorization, MatrixFactorizationConfig};
pub use mice::{Mice, MiceConfig};
pub use sequence::{build_sequences, Normalization, PathSequence};
pub use simple::{CaseDeletion, LinearInterpolation, SemiSupervised};
pub use ssgan::{Ssgan, SsganConfig};

use rm_geometry::Point;
use rm_radiomap::{DenseRadioMap, EntryKind, MaskMatrix, RadioMap, MNAR_FILL_VALUE};

/// The output of an imputer: a dense fingerprint per input record and, where
/// the imputer supports it, a location per input record. Record indices match
/// the input radio map.
#[derive(Debug, Clone, PartialEq)]
pub struct ImputedRadioMap {
    /// Dense fingerprints, one per input record.
    pub fingerprints: Vec<Vec<f64>>,
    /// Imputed (or passed-through) locations; `None` when the imputer does not
    /// impute that record's location (e.g. case deletion).
    pub locations: Vec<Option<Point>>,
}

impl ImputedRadioMap {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// Returns `true` when there are no records.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// The imputed RSSI of `(record, ap)`.
    pub fn rssi(&self, record: usize, ap: usize) -> f64 {
        self.fingerprints[record][ap]
    }

    /// Converts the result into a [`DenseRadioMap`] containing only the
    /// records that have a location — the radio map used by the online
    /// location-estimation algorithms.
    pub fn to_dense(&self, num_aps: usize) -> DenseRadioMap {
        let mut fingerprints = Vec::new();
        let mut locations = Vec::new();
        for (f, l) in self.fingerprints.iter().zip(self.locations.iter()) {
            if let Some(loc) = l {
                fingerprints.push(f.clone());
                locations.push(*loc);
            }
        }
        DenseRadioMap::new(fingerprints, locations, num_aps)
    }
}

/// A radio-map data imputer.
pub trait Imputer {
    /// Imputes the missing RSSIs and reference points of `map`, guided by the
    /// differentiator's `mask` (MNAR entries are filled with −100 dBm, MAR
    /// entries with model predictions).
    fn impute(&self, map: &RadioMap, mask: &MaskMatrix) -> ImputedRadioMap;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Fills the MNAR entries of every fingerprint with −100 dBm and returns the
/// resulting partially-dense matrix as `Option<f64>` values: MNARs and
/// observed entries are `Some`, MAR entries stay `None` for the model-based
/// imputers to predict.
pub fn fill_mnars(map: &RadioMap, mask: &MaskMatrix) -> Vec<Vec<Option<f64>>> {
    map.records()
        .iter()
        .enumerate()
        .map(|(i, record)| {
            (0..map.num_aps())
                .map(|ap| match record.fingerprint.get(ap) {
                    Some(v) => Some(v),
                    None => match mask.get(i, ap) {
                        EntryKind::Mnar => Some(MNAR_FILL_VALUE),
                        _ => None,
                    },
                })
                .collect()
        })
        .collect()
}

/// Fills every remaining missing entry of `values` with `fill` — the final
/// fallback used by imputers that do not predict certain entries.
pub fn densify(values: &[Vec<Option<f64>>], fill: f64) -> Vec<Vec<f64>> {
    values
        .iter()
        .map(|row| row.iter().map(|v| v.unwrap_or(fill)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_radiomap::{Fingerprint, RadioMapRecord};

    fn map_and_mask() -> (RadioMap, MaskMatrix) {
        let records = vec![
            RadioMapRecord::new(
                Fingerprint::new(vec![Some(-70.0), None]),
                Some(Point::new(0.0, 0.0)),
                0.0,
                0,
            ),
            RadioMapRecord::new(Fingerprint::new(vec![None, None]), None, 1.0, 0),
        ];
        let map = RadioMap::new(records, 2);
        let mut mask = MaskMatrix::all_observed(2, 2);
        mask.set(0, 1, EntryKind::Mar);
        mask.set(1, 0, EntryKind::Mnar);
        mask.set(1, 1, EntryKind::Mar);
        (map, mask)
    }

    #[test]
    fn fill_mnars_fills_only_mnars() {
        let (map, mask) = map_and_mask();
        let filled = fill_mnars(&map, &mask);
        assert_eq!(filled[0][0], Some(-70.0));
        assert_eq!(filled[0][1], None); // MAR stays open
        assert_eq!(filled[1][0], Some(MNAR_FILL_VALUE));
        assert_eq!(filled[1][1], None);
    }

    #[test]
    fn densify_fills_remaining_nulls() {
        let (map, mask) = map_and_mask();
        let dense = densify(&fill_mnars(&map, &mask), -88.0);
        assert_eq!(dense[0][1], -88.0);
        assert_eq!(dense[1][0], MNAR_FILL_VALUE);
    }

    #[test]
    fn imputed_map_to_dense_drops_locationless_records() {
        let imputed = ImputedRadioMap {
            fingerprints: vec![vec![-70.0, -80.0], vec![-60.0, -90.0]],
            locations: vec![Some(Point::new(1.0, 2.0)), None],
        };
        assert_eq!(imputed.len(), 2);
        assert_eq!(imputed.rssi(1, 0), -60.0);
        let dense = imputed.to_dense(2);
        assert_eq!(dense.len(), 1);
        assert_eq!(dense.locations()[0], Point::new(1.0, 2.0));
    }
}
