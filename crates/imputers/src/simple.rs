//! Traditional imputers used in fingerprinting-based positioning:
//! case deletion (CD), linear interpolation (LI) and semi-supervised RP
//! inference (SL). All three fill every missing RSSI (MAR and MNAR alike)
//! with −100 dBm; they differ only in how missing reference points are
//! handled.

use std::cmp::Ordering;

use rm_geometry::Point;
use rm_radiomap::{MaskMatrix, RadioMap, MNAR_FILL_VALUE};

use crate::{ImputedRadioMap, Imputer};

/// Fills every missing RSSI with −100 dBm (ignoring the MAR/MNAR distinction),
/// shared by the three traditional imputers.
fn dense_fingerprints_with_floor(map: &RadioMap) -> Vec<Vec<f64>> {
    map.records()
        .iter()
        .map(|r| r.fingerprint.to_dense(MNAR_FILL_VALUE))
        .collect()
}

/// CD — case deletion: records without an observed RP are dropped from the
/// usable radio map; missing RSSIs become −100 dBm.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseDeletion;

impl Imputer for CaseDeletion {
    fn impute(&self, map: &RadioMap, _mask: &MaskMatrix) -> ImputedRadioMap {
        ImputedRadioMap {
            fingerprints: dense_fingerprints_with_floor(map),
            locations: map.records().iter().map(|r| r.rp).collect(),
        }
    }

    fn name(&self) -> &'static str {
        "CD"
    }
}

/// LI — linear interpolation: missing RPs are interpolated linearly between
/// the previously and subsequently observed RPs on the same survey path;
/// missing RSSIs become −100 dBm.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearInterpolation;

impl Imputer for LinearInterpolation {
    fn impute(&self, map: &RadioMap, _mask: &MaskMatrix) -> ImputedRadioMap {
        ImputedRadioMap {
            fingerprints: dense_fingerprints_with_floor(map),
            locations: map.interpolate_rps(),
        }
    }

    fn name(&self) -> &'static str {
        "LI"
    }
}

/// SL — semi-supervised RP inference: records with observed RPs act as
/// labelled samples; unlabelled records iteratively receive the
/// distance-weighted mean location of their `k` nearest labelled neighbours in
/// fingerprint space, and join the labelled pool for the next round.
/// Missing RSSIs become −100 dBm.
#[derive(Debug, Clone, Copy)]
pub struct SemiSupervised {
    /// Number of labelled neighbours used per inference.
    pub k: usize,
    /// Number of label-propagation rounds.
    pub rounds: usize,
}

impl Default for SemiSupervised {
    fn default() -> Self {
        Self { k: 3, rounds: 3 }
    }
}

impl Imputer for SemiSupervised {
    fn impute(&self, map: &RadioMap, _mask: &MaskMatrix) -> ImputedRadioMap {
        let fingerprints = dense_fingerprints_with_floor(map);
        let mut locations: Vec<Option<Point>> = map.records().iter().map(|r| r.rp).collect();

        for _ in 0..self.rounds {
            let labelled: Vec<usize> = (0..map.len()).filter(|&i| locations[i].is_some()).collect();
            if labelled.is_empty() {
                break;
            }
            let mut newly_labelled = Vec::new();
            for i in 0..map.len() {
                if locations[i].is_some() {
                    continue;
                }
                // k nearest labelled records in fingerprint space.
                let mut scored: Vec<(f64, usize)> = labelled
                    .iter()
                    .map(|&j| (euclidean(&fingerprints[i], &fingerprints[j]), j))
                    .collect();
                scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
                scored.truncate(self.k.max(1));
                if scored.is_empty() {
                    continue;
                }
                let mut weight_sum = 0.0;
                let mut acc = Point::origin();
                for &(d, j) in &scored {
                    let w = 1.0 / (d + 1e-6);
                    weight_sum += w;
                    acc = acc + locations[j].expect("labelled record has a location") * w;
                }
                newly_labelled.push((i, acc / weight_sum));
            }
            if newly_labelled.is_empty() {
                break;
            }
            for (i, p) in newly_labelled {
                locations[i] = Some(p);
            }
        }

        ImputedRadioMap {
            fingerprints,
            locations,
        }
    }

    fn name(&self) -> &'static str {
        "SL"
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_radiomap::Fingerprint;
    use rm_radiomap::RadioMapRecord;

    /// Path of 4 records; records 1 and 2 lack RPs.
    fn map() -> RadioMap {
        let mk = |values: Vec<Option<f64>>, rp: Option<Point>, t: f64| {
            RadioMapRecord::new(Fingerprint::new(values), rp, t, 0)
        };
        RadioMap::new(
            vec![
                mk(vec![Some(-50.0), None], Some(Point::new(0.0, 0.0)), 0.0),
                mk(vec![Some(-55.0), None], None, 1.0),
                mk(vec![None, Some(-60.0)], None, 2.0),
                mk(vec![None, Some(-52.0)], Some(Point::new(3.0, 0.0)), 3.0),
            ],
            2,
        )
    }

    fn mask(map: &RadioMap) -> MaskMatrix {
        MaskMatrix::all_observed(map.len(), map.num_aps())
    }

    #[test]
    fn cd_keeps_only_observed_rps() {
        let m = map();
        let out = CaseDeletion.impute(&m, &mask(&m));
        assert_eq!(out.len(), 4);
        assert_eq!(out.locations[1], None);
        let dense = out.to_dense(2);
        assert_eq!(dense.len(), 2);
        // Missing RSSIs become -100.
        assert_eq!(out.fingerprints[0][1], MNAR_FILL_VALUE);
        assert_eq!(CaseDeletion.name(), "CD");
    }

    #[test]
    fn li_interpolates_missing_rps() {
        let m = map();
        let out = LinearInterpolation.impute(&m, &mask(&m));
        let p1 = out.locations[1].unwrap();
        let p2 = out.locations[2].unwrap();
        assert!((p1.x - 1.0).abs() < 1e-9);
        assert!((p2.x - 2.0).abs() < 1e-9);
        assert_eq!(LinearInterpolation.name(), "LI");
    }

    #[test]
    fn sl_labels_every_record_given_enough_rounds() {
        let m = map();
        let out = SemiSupervised::default().impute(&m, &mask(&m));
        assert!(out.locations.iter().all(Option::is_some));
        // Record 1's fingerprint is closest to record 0's, so its inferred
        // location should be nearer to (0,0) than to (3,0).
        let p1 = out.locations[1].unwrap();
        assert!(p1.distance(Point::new(0.0, 0.0)) < p1.distance(Point::new(3.0, 0.0)));
        assert_eq!(SemiSupervised::default().name(), "SL");
    }

    #[test]
    fn sl_with_no_labels_leaves_everything_unlabelled() {
        let records = vec![
            RadioMapRecord::new(Fingerprint::new(vec![Some(-50.0)]), None, 0.0, 0),
            RadioMapRecord::new(Fingerprint::new(vec![Some(-60.0)]), None, 1.0, 0),
        ];
        let m = RadioMap::new(records, 1);
        let out = SemiSupervised::default().impute(&m, &mask(&m));
        assert!(out.locations.iter().all(Option::is_none));
        assert!(out.to_dense(1).is_empty());
    }

    #[test]
    fn all_traditional_imputers_fill_rssis_with_floor() {
        let m = map();
        for imputer in [
            &CaseDeletion as &dyn Imputer,
            &LinearInterpolation,
            &SemiSupervised::default(),
        ] {
            let out = imputer.impute(&m, &mask(&m));
            assert_eq!(out.fingerprints[2][0], MNAR_FILL_VALUE);
            assert_eq!(out.fingerprints[0][0], -50.0);
        }
    }
}
