//! Named-tensor snapshot helpers shared by the model-based imputers — and by
//! BiSIM in `rm-bisim`, which depends on this crate.
//!
//! The export half serializes trained layers as [`NamedTensor`]s at the
//! dtype the inference path keeps resident; the import half reassembles them
//! for warm-started re-imputation ([`crate::Imputer::impute_warm`]). Every
//! helper is shape-checked on import and returns `None` instead of panicking
//! on a missing or foreign tensor, so warm-starting is always safe to
//! attempt.

use rm_nn::{Activation, LinearWeights, LstmCellWeights, MlpWeights};
use rm_tensor::{Bf16Matrix, Matrix, NamedTensor, Precision, SnapshotDtype};

/// Exports one linear layer as `{name}.weight` / `{name}.bias` at the dtype
/// the inference path keeps resident: `(F64, _)` exports the f64 training
/// snapshot, `(F32, Native)` the one-time f32 rounding, `(F32, Bf16)` the
/// bfloat16 truncation of that rounding. The truncation is the same
/// `Bf16Matrix::from_matrix` the resident bf16 snapshots apply, so the
/// exported bits equal the serving bits in every mode.
pub fn export_linear(
    name: &str,
    lin: &LinearWeights<f64>,
    precision: Precision,
    snapshot_dtype: SnapshotDtype,
    tensors: &mut Vec<NamedTensor>,
) {
    let wname = format!("{name}.weight");
    let bname = format!("{name}.bias");
    match (precision, snapshot_dtype) {
        (Precision::F64, _) => {
            tensors.push(NamedTensor::new(wname, lin.weight().clone()));
            tensors.push(NamedTensor::new(bname, lin.bias().clone()));
        }
        (Precision::F32, SnapshotDtype::Native) => {
            let rounded: LinearWeights<f32> = lin.cast();
            tensors.push(NamedTensor::new(wname, rounded.weight().clone()));
            tensors.push(NamedTensor::new(bname, rounded.bias().clone()));
        }
        (Precision::F32, SnapshotDtype::Bf16) => {
            let rounded: LinearWeights<f32> = lin.cast();
            tensors.push(NamedTensor::new(
                wname,
                Bf16Matrix::from_matrix(rounded.weight()),
            ));
            tensors.push(NamedTensor::new(
                bname,
                Bf16Matrix::from_matrix(rounded.bias()),
            ));
        }
    }
}

/// Exports the four LSTM gate layers under `{prefix}.cell.{gate}` (in
/// [`LstmCellWeights::gates`] order: `input_gate`, `forget_gate`,
/// `output_gate`, `candidate`).
pub fn export_lstm_cell(
    prefix: &str,
    cell: &LstmCellWeights<f64>,
    precision: Precision,
    snapshot_dtype: SnapshotDtype,
    tensors: &mut Vec<NamedTensor>,
) {
    let [input_gate, forget_gate, output_gate, candidate] = cell.gates();
    for (gate, lin) in [
        ("input_gate", input_gate),
        ("forget_gate", forget_gate),
        ("output_gate", output_gate),
        ("candidate", candidate),
    ] {
        export_linear(
            &format!("{prefix}.cell.{gate}"),
            lin,
            precision,
            snapshot_dtype,
            tensors,
        );
    }
}

/// Exports an MLP's layers under `{prefix}.0`, `{prefix}.1`, … (input to
/// output order). The activations are not serialized — they are part of the
/// architecture the importing model fixes — so [`import_mlp`] takes them as
/// arguments.
pub fn export_mlp(
    prefix: &str,
    mlp: &MlpWeights<f64>,
    precision: Precision,
    snapshot_dtype: SnapshotDtype,
    tensors: &mut Vec<NamedTensor>,
) {
    for (i, lin) in mlp.layers().iter().enumerate() {
        export_linear(
            &format!("{prefix}.{i}"),
            lin,
            precision,
            snapshot_dtype,
            tensors,
        );
    }
}

/// Looks up one tensor by name and widens it to the `f64` training
/// precision (lossless for every storage dtype — see
/// [`rm_tensor::TensorPayload::to_f64_matrix`]).
pub fn find_tensor(tensors: &[NamedTensor], name: &str) -> Option<Matrix<f64>> {
    tensors
        .iter()
        .find(|t| t.name == name)
        .map(|t| t.payload.to_f64_matrix())
}

/// Reassembles one `{prefix}.{layer}.{weight, bias}` pair exported by
/// [`export_linear`]; `None` when either tensor is missing or the bias is
/// not the weight's output column.
pub fn import_linear(
    tensors: &[NamedTensor],
    prefix: &str,
    layer: &str,
) -> Option<LinearWeights<f64>> {
    let weight = find_tensor(tensors, &format!("{prefix}.{layer}.weight"))?;
    let bias = find_tensor(tensors, &format!("{prefix}.{layer}.bias"))?;
    if (bias.rows(), bias.cols()) != (weight.rows(), 1) {
        return None;
    }
    Some(LinearWeights::from_parts(weight, bias))
}

/// Reassembles the four LSTM gate layers exported under `{prefix}.cell.*`;
/// `None` when any gate is missing or the gate shapes disagree.
pub fn import_lstm_cell(tensors: &[NamedTensor], prefix: &str) -> Option<LstmCellWeights<f64>> {
    let input_gate = import_linear(tensors, prefix, "cell.input_gate")?;
    let forget_gate = import_linear(tensors, prefix, "cell.forget_gate")?;
    let output_gate = import_linear(tensors, prefix, "cell.output_gate")?;
    let candidate = import_linear(tensors, prefix, "cell.candidate")?;
    let shape = input_gate.weight().shape();
    for gate in [&forget_gate, &output_gate, &candidate] {
        if gate.weight().shape() != shape {
            return None;
        }
    }
    Some(LstmCellWeights::from_gates(
        input_gate,
        forget_gate,
        output_gate,
        candidate,
    ))
}

/// Reassembles an MLP exported by [`export_mlp`]: consecutive numbered
/// layers starting at `{prefix}.0`, with the caller supplying the
/// architecture's activations. `None` when no layer is present or the layer
/// shapes do not chain.
pub fn import_mlp(
    tensors: &[NamedTensor],
    prefix: &str,
    hidden_activation: Activation,
    output_activation: Activation,
) -> Option<MlpWeights<f64>> {
    let mut layers: Vec<LinearWeights<f64>> = Vec::new();
    while let Some(layer) = import_linear(tensors, prefix, &layers.len().to_string()) {
        layers.push(layer);
    }
    if layers.is_empty() {
        return None;
    }
    for pair in layers.windows(2) {
        if pair[0].weight().rows() != pair[1].weight().cols() {
            return None;
        }
    }
    Some(MlpWeights::from_layers(
        layers,
        hidden_activation,
        output_activation,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rm_nn::{LstmCell, Mlp};

    #[test]
    fn linear_round_trips_bitwise_at_every_dtype() {
        let mut rng = StdRng::seed_from_u64(7);
        let lin = rm_nn::Linear::new(3, 4, &mut rng).snapshot();
        for (precision, snapshot_dtype) in [
            (Precision::F64, SnapshotDtype::Native),
            (Precision::F32, SnapshotDtype::Native),
            (Precision::F32, SnapshotDtype::Bf16),
        ] {
            let mut tensors = Vec::new();
            export_linear("m.layer", &lin, precision, snapshot_dtype, &mut tensors);
            assert_eq!(tensors.len(), 2);
            let imported = import_linear(&tensors, "m", "layer").expect("import");
            // Re-exporting the imported weights reproduces the same bits:
            // widening to f64 is lossless and the rounding is deterministic.
            let mut again = Vec::new();
            export_linear("m.layer", &imported, precision, snapshot_dtype, &mut again);
            for (a, b) in tensors.iter().zip(again.iter()) {
                assert!(a.bits_eq(b), "{} drifted through the round trip", a.name);
            }
        }
    }

    #[test]
    fn lstm_cell_round_trips_and_rejects_mismatched_gates() {
        let mut rng = StdRng::seed_from_u64(8);
        let cell = LstmCell::new(6, 4, &mut rng).snapshot();
        let mut tensors = Vec::new();
        export_lstm_cell(
            "d",
            &cell,
            Precision::F64,
            SnapshotDtype::Native,
            &mut tensors,
        );
        assert_eq!(tensors.len(), 8);
        let imported = import_lstm_cell(&tensors, "d").expect("import");
        assert_eq!(imported.gates()[0].weight().shape(), (4, 10));
        // Drop one gate: the import refuses rather than panicking.
        tensors.retain(|t| !t.name.contains("candidate"));
        assert!(import_lstm_cell(&tensors, "d").is_none());
    }

    #[test]
    fn mlp_round_trips_with_numbered_layers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new(&[3, 5, 3], Activation::Relu, Activation::Sigmoid, &mut rng).snapshot();
        let mut tensors = Vec::new();
        export_mlp(
            "m.disc",
            &mlp,
            Precision::F64,
            SnapshotDtype::Native,
            &mut tensors,
        );
        assert_eq!(tensors.len(), 4);
        let imported =
            import_mlp(&tensors, "m.disc", Activation::Relu, Activation::Sigmoid).expect("import");
        assert_eq!(imported.layers().len(), 2);
        for (a, b) in mlp.layers().iter().zip(imported.layers().iter()) {
            assert!(a.weight().bits_eq(b.weight()));
            assert!(a.bias().bits_eq(b.bias()));
        }
        assert!(import_mlp(&tensors, "absent", Activation::Relu, Activation::Sigmoid).is_none());
    }
}
