//! BRITS — Bidirectional Recurrent Imputation for Time Series (Cao et al.),
//! adapted to radio maps: it imputes MAR RSSIs from the temporal structure of
//! each survey path, and falls back to linear interpolation for missing RPs
//! (BRITS itself cannot impute labels).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_nn::{
    loss, Adam, Linear, LinearWeights, LstmCell, LstmCellWeights, LstmState, LstmStateMatrix,
    Optimizer,
};
use rm_radiomap::{EntryKind, MaskMatrix, RadioMap, MNAR_FILL_VALUE};
use rm_tensor::{Matrix, Precision, Scalar, Var};

use crate::sequence::{build_sequences, Normalization, PathSequence};
use crate::{gates, ImputedRadioMap, Imputer};

/// Configuration shared by the recurrent imputers.
#[derive(Debug, Clone)]
pub struct BritsConfig {
    /// Hidden state size of the recurrent cell.
    pub hidden_size: usize,
    /// Number of training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Sequence length `T` (the paper tunes this to 5).
    pub sequence_length: usize,
    /// RNG seed for parameter initialisation.
    pub seed: u64,
    /// Worker threads for the per-sequence fan-outs (`0` = auto). Training
    /// stays sequential — per-sequence SGD steps form a dependency chain —
    /// but sequence preparation and the final inference pass over all
    /// sequences are pure and parallelise deterministically.
    pub threads: usize,
    /// Precision of the inference pass. Training always runs at `f64`;
    /// [`Precision::F32`] rounds the trained weights to f32 once and runs
    /// every sequence through the f32 kernels (twice the SIMD lanes, half
    /// the memory traffic). [`Precision::F64`] — the default — is
    /// bit-identical to the pre-precision-axis pipeline. Either setting is
    /// bit-identical across thread counts.
    pub precision: Precision,
}

impl Default for BritsConfig {
    fn default() -> Self {
        Self {
            hidden_size: 32,
            epochs: default_epochs(),
            learning_rate: 0.01,
            sequence_length: 5,
            seed: 31,
            threads: 0,
            precision: Precision::F64,
        }
    }
}

/// Default epoch count for the neural imputers; honouring `RM_EPOCHS` lets the
/// experiment harness trade training time for accuracy, and `RM_QUICK=1`
/// selects a fast smoke-test setting.
pub fn default_epochs() -> usize {
    if let Ok(v) = std::env::var("RM_EPOCHS") {
        if let Ok(parsed) = v.parse::<usize>() {
            return parsed.max(1);
        }
    }
    if std::env::var("RM_QUICK").map(|v| v == "1").unwrap_or(false) {
        8
    } else {
        30
    }
}

/// One direction of the recurrent imputer: estimates each step's fingerprint
/// from the decayed hidden state, complements the observation, and feeds the
/// complemented vector (concatenated with its mask) to an LSTM cell.
pub(crate) struct RecurrentImputer {
    estimate: Linear,
    decay: Linear,
    cell: LstmCell,
    hidden_size: usize,
}

/// The per-step outputs of one directional pass.
pub(crate) struct DirectionalPass {
    /// Model estimates `x̂_t` (used by the reconstruction loss).
    pub estimates: Vec<Var>,
    /// Complemented vectors `x_c` (the imputations).
    pub complements: Vec<Var>,
}

impl RecurrentImputer {
    pub(crate) fn new(num_aps: usize, hidden_size: usize, rng: &mut StdRng) -> Self {
        Self {
            estimate: Linear::new(hidden_size, num_aps, rng),
            decay: Linear::new(num_aps, hidden_size, rng),
            cell: LstmCell::new(num_aps * 2, hidden_size, rng),
            hidden_size,
        }
    }

    pub(crate) fn parameters(&self) -> Vec<Var> {
        let mut params = self.estimate.parameters();
        params.extend(self.decay.parameters());
        params.extend(self.cell.parameters());
        params
    }

    /// Runs the imputer over one (already ordered) sequence.
    pub(crate) fn run(&self, seq: &PathSequence) -> DirectionalPass {
        let mut state = LstmState::zeros(self.hidden_size);
        let mut estimates = Vec::with_capacity(seq.len());
        let mut complements = Vec::with_capacity(seq.len());
        for t in 0..seq.len() {
            let x = Var::constant(Matrix::column(&seq.fingerprints[t]));
            let mask = Matrix::column(&seq.fingerprint_masks[t]);
            let lag = Var::constant(Matrix::column(&seq.time_lags[t]));

            // Estimate the fingerprint from the previous hidden state.
            let x_hat = self.estimate.forward(&state.h);
            // Complement: observed entries pass through, missing use the estimate.
            let inverse_mask = mask.map(|m| 1.0 - m);
            let x_c = x.mask(&mask).add(&x_hat.mask(&inverse_mask));
            // Temporal decay of the hidden state.
            let gamma = self.decay.forward(&lag).relu().scale(-1.0).exp();
            let decayed = LstmState {
                h: state.h.hadamard(&gamma),
                c: state.c.clone(),
            };
            let input = Var::concat_rows(&[x_c.clone(), Var::constant(mask.clone())]);
            state = self.cell.step(&input, &decayed);

            estimates.push(x_hat);
            complements.push(x_c);
        }
        DirectionalPass {
            estimates,
            complements,
        }
    }

    /// Copies the trained parameters into a graph-free, `Send + Sync`
    /// snapshot for the parallel inference pass. The snapshot is taken at
    /// the training precision (`f64`); round it with
    /// [`RecurrentImputerWeights::cast`] for the f32 inference path.
    pub(crate) fn snapshot(&self) -> RecurrentImputerWeights {
        RecurrentImputerWeights {
            estimate: self.estimate.snapshot(),
            decay: self.decay.snapshot(),
            cell: self.cell.snapshot(),
            hidden_size: self.hidden_size,
        }
    }
}

/// A graph-free snapshot of a trained [`RecurrentImputer`]. Unlike the
/// `Var`-based model (whose nodes are `Rc`-shared and thus thread-bound),
/// the snapshot holds plain matrices and can be shared by every worker of
/// the inference fan-out. [`RecurrentImputerWeights::run`] mirrors
/// [`RecurrentImputer::run`] operation for operation, so at `T = f64` the
/// imputations are bit-identical to running the autodiff graph forward; at
/// `T = f32` the same code runs through the single-precision kernels.
pub(crate) struct RecurrentImputerWeights<T: Scalar = f64> {
    estimate: LinearWeights<T>,
    decay: LinearWeights<T>,
    cell: LstmCellWeights<T>,
    hidden_size: usize,
}

impl<T: Scalar> RecurrentImputerWeights<T> {
    /// Rounds the snapshot to another precision (the one-time `f64 → f32`
    /// weight rounding of the f32 inference path).
    pub(crate) fn cast<U: Scalar>(&self) -> RecurrentImputerWeights<U> {
        RecurrentImputerWeights {
            estimate: self.estimate.cast(),
            decay: self.decay.cast(),
            cell: self.cell.cast(),
            hidden_size: self.hidden_size,
        }
    }

    /// Runs the imputer over one sequence, returning the complemented vector
    /// `x_c` of every step (the imputations; the reconstruction estimates are
    /// only needed for training). Sequence data is stored in `f64` and
    /// rounded per step, so the kernels — the hot path — run entirely in `T`.
    pub(crate) fn run(&self, seq: &PathSequence) -> Vec<Matrix<T>> {
        let mut state = LstmStateMatrix::zeros(self.hidden_size);
        let mut complements = Vec::with_capacity(seq.len());
        // Scratch buffers reused across all steps of the sequence.
        let mut x_hat = Matrix::zeros(0, 0);
        let mut decay_pre = Matrix::zeros(0, 0);
        for t in 0..seq.len() {
            let x = Matrix::column_from_f64(&seq.fingerprints[t]);
            let mask = Matrix::<T>::column_from_f64(&seq.fingerprint_masks[t]);
            let lag = Matrix::column_from_f64(&seq.time_lags[t]);

            self.estimate.forward_into(&state.h, &mut x_hat);
            let inverse_mask = mask.map(|m| T::ONE - m);
            let x_c = &x.hadamard(&mask) + &x_hat.hadamard(&inverse_mask);
            // γ = exp(-relu(W_γ δ + b_γ)), matching relu → scale(-1) → exp.
            self.decay.forward_into(&lag, &mut decay_pre);
            let gamma = decay_pre.map(Scalar::relu).scale(-T::ONE).map(Scalar::exp);
            let decayed = LstmStateMatrix {
                h: state.h.hadamard(&gamma),
                c: state.c.clone(),
            };
            let input = x_c.vstack(&mask);
            state = self.cell.step(&input, &decayed);
            complements.push(x_c);
        }
        complements
    }
}

/// The bidirectional inference fan-out, generic over the kernel precision:
/// every `(sequence, reversed)` pair runs through the shared weight
/// snapshots on the pool, and the forward/backward complements are averaged
/// at MAR positions. Denormalisation happens after widening back to `f64`,
/// so the returned `(record, ap, rssi)` triples are precision-independent in
/// type (not in value). Each task only reads the shared snapshots, so the
/// fan-out is order-preserving and bit-identical at any thread count.
fn infer_mar_values<T: Scalar>(
    forward: &RecurrentImputerWeights<T>,
    backward: &RecurrentImputerWeights<T>,
    pairs: &[(&PathSequence, &PathSequence)],
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    threads: usize,
) -> Vec<Vec<(usize, usize, f64)>> {
    rm_runtime::par_map(threads, pairs, |_, &(seq, rev)| {
        let fwd = forward.run(seq);
        let bwd = backward.run(rev);
        let mut values: Vec<(usize, usize, f64)> = Vec::new();
        for (t, &record) in seq.record_indices.iter().enumerate() {
            let rt = rev.len() - 1 - t;
            for ap in 0..num_aps {
                if mask.get(record, ap) == EntryKind::Mar {
                    let avg = (fwd[t].get(ap, 0) + bwd[rt].get(ap, 0)) / T::from_f64(2.0);
                    values.push((record, ap, norm.denormalize_rssi(avg.to_f64())));
                }
            }
        }
        values
    })
}

/// The BRITS imputer.
#[derive(Default)]
pub struct Brits {
    /// Training configuration.
    pub config: BritsConfig,
}

impl Brits {
    /// Creates a BRITS imputer with the given configuration.
    pub fn new(config: BritsConfig) -> Self {
        Self { config }
    }
}

impl Imputer for Brits {
    fn impute(&self, map: &RadioMap, mask: &MaskMatrix) -> ImputedRadioMap {
        let num_aps = map.num_aps();
        let norm = Normalization::from_map(map);
        let sequences = build_sequences(map, mask, self.config.sequence_length, &norm);

        // Fallback result when there is nothing to train on.
        let mut fingerprints: Vec<Vec<f64>> = map
            .records()
            .iter()
            .map(|r| r.fingerprint.to_dense(MNAR_FILL_VALUE))
            .collect();
        let locations = map.interpolate_rps();
        if sequences.is_empty() || num_aps == 0 {
            return ImputedRadioMap {
                fingerprints,
                locations,
            };
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let forward = RecurrentImputer::new(num_aps, self.config.hidden_size, &mut rng);
        let backward = RecurrentImputer::new(num_aps, self.config.hidden_size, &mut rng);
        let mut params = forward.parameters();
        params.extend(backward.parameters());
        let mut optimizer = Adam::new(params, self.config.learning_rate).with_clip(5.0);

        // Reversing a sequence is pure, so the backward-direction inputs are
        // prepared in parallel (serially below the sequence count that
        // amortises the spawn cost — see [`crate::gates`]).
        let reversal_threads = if sequences.len() < gates::BRITS_REVERSAL_MIN_SEQUENCES {
            1
        } else {
            self.config.threads
        };
        let reversed: Vec<PathSequence> =
            rm_runtime::par_map(reversal_threads, &sequences, |_, s| s.reversed(&norm));

        // Training is deliberately serial: each per-sequence Adam step reads
        // the parameters the previous step wrote, so the epoch loop is a
        // dependency chain (and the autodiff graph is `Rc`-based anyway).
        for _ in 0..self.config.epochs {
            for (seq, rev) in sequences.iter().zip(reversed.iter()) {
                optimizer.zero_grad();
                let fwd = forward.run(seq);
                let bwd = backward.run(rev);
                let mut total = Var::scalar(0.0);
                for t in 0..seq.len() {
                    let target = Matrix::column(&seq.fingerprints[t]);
                    let m = Matrix::column(&seq.fingerprint_masks[t]);
                    total = total.add(&loss::masked_mse(&fwd.estimates[t], &target, &m));
                    let rt = rev.len() - 1 - t;
                    let target_b = Matrix::column(&rev.fingerprints[rt]);
                    let m_b = Matrix::column(&rev.fingerprint_masks[rt]);
                    total = total.add(&loss::masked_mse(&bwd.estimates[rt], &target_b, &m_b));
                    // Consistency between the two directions at the same record.
                    total = total.add(
                        &loss::masked_mse_between(&fwd.complements[t], &bwd.complements[rt], &m)
                            .scale(0.1),
                    );
                }
                total.scale(1.0 / seq.len() as f64).backward();
                optimizer.step();
            }
        }

        // Produce imputations: average of forward and backward complements at
        // MAR positions. The trained weights are snapshotted into plain
        // matrices — rounded once to f32 when the config asks for
        // single-precision inference — and every sequence's inference fans
        // out over the pool; each task only reads the shared snapshot and
        // writes values for its own (disjoint) records, so the merge is
        // order-independent.
        let forward_weights = forward.snapshot();
        let backward_weights = backward.snapshot();
        let pairs: Vec<(&PathSequence, &PathSequence)> =
            sequences.iter().zip(reversed.iter()).collect();
        let threads = self.config.threads;
        let imputations = match self.config.precision {
            Precision::F64 => infer_mar_values(
                &forward_weights,
                &backward_weights,
                &pairs,
                mask,
                &norm,
                num_aps,
                threads,
            ),
            Precision::F32 => infer_mar_values(
                &forward_weights.cast::<f32>(),
                &backward_weights.cast::<f32>(),
                &pairs,
                mask,
                &norm,
                num_aps,
                threads,
            ),
        };
        for values in imputations {
            for (record, ap, value) in values {
                fingerprints[record][ap] = value;
            }
        }

        ImputedRadioMap {
            fingerprints,
            locations,
        }
    }

    fn name(&self) -> &'static str {
        "BRITS"
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rm_geometry::Point;
    use rm_radiomap::{Fingerprint, RadioMapRecord};

    /// A path whose AP0 RSSI varies smoothly in time; one value is MAR.
    pub(crate) fn smooth_map() -> (RadioMap, MaskMatrix) {
        let mut records = Vec::new();
        for i in 0..10 {
            let v = -60.0 - i as f64;
            let value = if i == 5 { None } else { Some(v) };
            records.push(RadioMapRecord::new(
                Fingerprint::new(vec![value, Some(-80.0)]),
                Some(Point::new(i as f64, 0.0)),
                i as f64 * 2.0,
                0,
            ));
        }
        let map = RadioMap::new(records, 2);
        let mut mask = MaskMatrix::all_observed(10, 2);
        mask.set(5, 0, EntryKind::Mar);
        (map, mask)
    }

    fn quick_config() -> BritsConfig {
        BritsConfig {
            hidden_size: 16,
            epochs: 30,
            learning_rate: 0.02,
            sequence_length: 5,
            seed: 3,
            threads: 0,
            precision: Precision::F64,
        }
    }

    #[test]
    fn brits_imputes_a_plausible_mar_value() {
        let (map, mask) = smooth_map();
        let out = Brits::new(quick_config()).impute(&map, &mask);
        let imputed = out.rssi(5, 0);
        // The surrounding observations are in [-69, -61]; the imputation must
        // land far from the -100 floor and inside the plausible band.
        assert!(
            (-80.0..=-50.0).contains(&imputed),
            "imputed value {imputed} is implausible"
        );
        // Observed entries pass through unchanged.
        assert_eq!(out.rssi(0, 0), -60.0);
        assert_eq!(out.rssi(3, 1), -80.0);
        assert_eq!(Brits::default().name(), "BRITS");
    }

    /// The f32 inference path must stay close to the f64 path: same trained
    /// weights, only the inference kernels rounded. On the smooth test map
    /// the two imputations agree to well under a tenth of a dBm.
    #[test]
    fn brits_f32_inference_tracks_the_f64_path() {
        let (map, mask) = smooth_map();
        let f64_out = Brits::new(quick_config()).impute(&map, &mask);
        let f32_out = Brits::new(BritsConfig {
            precision: Precision::F32,
            ..quick_config()
        })
        .impute(&map, &mask);
        let a = f64_out.rssi(5, 0);
        let b = f32_out.rssi(5, 0);
        assert!(
            (a - b).abs() < 0.1,
            "f32 imputation {b} drifted from f64 imputation {a}"
        );
        // Observed entries pass through identically at either precision.
        assert_eq!(f32_out.rssi(0, 0).to_bits(), f64_out.rssi(0, 0).to_bits());
    }

    #[test]
    fn brits_uses_linear_interpolation_for_rps() {
        let (mut map, mask) = smooth_map();
        map.records_mut()[4].rp = None;
        let out = Brits::new(quick_config()).impute(&map, &mask);
        let p = out.locations[4].unwrap();
        assert!((p.x - 4.0).abs() < 1e-6);
    }

    #[test]
    fn brits_handles_empty_map() {
        let out =
            Brits::new(quick_config()).impute(&RadioMap::empty(3), &MaskMatrix::all_observed(0, 3));
        assert!(out.is_empty());
    }

    #[test]
    fn default_epochs_respects_env() {
        // Just exercise the parsing path; the value depends on the environment.
        let e = default_epochs();
        assert!(e >= 1);
    }
}
