//! BRITS — Bidirectional Recurrent Imputation for Time Series (Cao et al.),
//! adapted to radio maps: it imputes MAR RSSIs from the temporal structure of
//! each survey path, and falls back to linear interpolation for missing RPs
//! (BRITS itself cannot impute labels).

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_nn::{
    loss, Adam, GradientBatch, Linear, LinearWeights, LinearWeightsBf16, LstmCell, LstmCellWeights,
    LstmCellWeightsBf16, LstmState, LstmStateMatrix, Optimizer,
};
use rm_radiomap::{EntryKind, MaskMatrix, RadioMap, MNAR_FILL_VALUE};
use rm_tensor::{Matrix, NamedTensor, Precision, Scalar, SnapshotDtype, Var, Workspace};

use crate::sequence::{build_sequences, Normalization, PathSequence};
use crate::{gates, snapshot, ImputedRadioMap, Imputer};

/// Configuration shared by the recurrent imputers.
#[derive(Debug, Clone)]
pub struct BritsConfig {
    /// Hidden state size of the recurrent cell.
    pub hidden_size: usize,
    /// Number of training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Sequence length `T` (the paper tunes this to 5).
    pub sequence_length: usize,
    /// RNG seed for parameter initialisation.
    pub seed: u64,
    /// Worker threads for the per-sequence fan-outs (`0` = auto): sequence
    /// preparation, the final inference pass, and — when [`Self::batch_size`]
    /// is above 1 — the per-sequence forward/backward passes inside each
    /// training batch. All fan-outs are deterministic: results are
    /// bit-identical at any thread count.
    pub threads: usize,
    /// Mini-batch size of the training loop. Batch boundaries are fixed by
    /// this value alone (never by the thread count), the per-sequence
    /// gradients inside a batch are computed against the batch-start
    /// weights, and their sum is reduced in sequence-index order — so a
    /// fixed `batch_size` yields a bitwise-identical model at any thread
    /// count. The default of `1` reproduces the classic per-sequence SGD
    /// trajectory bitwise; larger batches take fewer, **summed-gradient**
    /// steps (a *different* — though equally deterministic — trajectory),
    /// letting training fan out across the worker pool. The sum is applied
    /// raw — no division by the batch size — so a `k`-sequence batch's
    /// gradient norm is roughly `k×` a per-sequence gradient's and the
    /// optimizer's fixed element-wise clip engages correspondingly more
    /// often; retune `learning_rate` rather than assume an averaged step
    /// when raising this.
    pub batch_size: usize,
    /// Precision of the inference pass. Training always runs at `f64`;
    /// [`Precision::F32`] rounds the trained weights to f32 once and runs
    /// every sequence through the f32 kernels (twice the SIMD lanes, half
    /// the memory traffic). [`Precision::F64`] — the default — is
    /// bit-identical to the pre-precision-axis pipeline. Either setting is
    /// bit-identical across thread counts.
    pub precision: Precision,
    /// Resident storage format of the trained snapshot during inference.
    /// [`SnapshotDtype::Bf16`] truncates the f32 snapshot to bfloat16 (half
    /// the resident bytes) and decodes it into pooled f32 scratch per
    /// inference task; it only takes effect with [`Precision::F32`] — the
    /// f64 path ignores it. Accuracy is epsilon-bounded, not bit-compatible
    /// (see [`rm_tensor::half`]); results remain bit-identical across thread
    /// counts either way.
    pub snapshot_dtype: SnapshotDtype,
}

impl Default for BritsConfig {
    fn default() -> Self {
        Self {
            hidden_size: 32,
            epochs: default_epochs(),
            learning_rate: 0.01,
            sequence_length: 5,
            seed: 31,
            threads: 0,
            batch_size: default_batch_size(),
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
        }
    }
}

/// Default epoch count for the neural imputers; honouring `RM_EPOCHS` lets the
/// experiment harness trade training time for accuracy, and `RM_QUICK=1`
/// selects a fast smoke-test setting.
///
/// The value is resolved **once per process** and cached (like the
/// `RM_THREADS` resolution in `rm-runtime`), so repeated calls can never
/// disagree and concurrent tests can never observe a mid-run environment
/// change. `RM_EPOCHS` has a floor of 1 — zero epochs would return an
/// untrained model — and a request of `0` is promoted to 1 with a one-time
/// warning on stderr.
#[allow(clippy::disallowed_methods)] // audited env reads; see the rm-lint allows inside
pub fn default_epochs() -> usize {
    static EPOCHS: OnceLock<usize> = OnceLock::new();
    *EPOCHS.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_EPOCHS
        if let Ok(v) = std::env::var("RM_EPOCHS") {
            if let Ok(parsed) = v.parse::<usize>() {
                if parsed == 0 {
                    eprintln!(
                        "[rm-imputers] warning: RM_EPOCHS=0 is below the floor of 1 \
                         training epoch; running 1 epoch instead"
                    );
                }
                return parsed.max(1);
            }
        }
        // rm-lint: allow(no-raw-env-read): RM_QUICK is folded into the same cached RM_EPOCHS resolution
        if std::env::var("RM_QUICK").map(|v| v == "1").unwrap_or(false) {
            8
        } else {
            30
        }
    })
}

/// Default training mini-batch size for the recurrent imputers: the
/// `RM_BATCH` environment variable if set to a positive integer, else `1`
/// (the classic per-sequence SGD trajectory). Resolved once per process and
/// cached, like [`default_epochs`]; `RM_BATCH=0` is promoted to 1 with a
/// one-time warning.
#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub fn default_batch_size() -> usize {
    static BATCH: OnceLock<usize> = OnceLock::new();
    *BATCH.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_BATCH
        if let Ok(v) = std::env::var("RM_BATCH") {
            if let Ok(parsed) = v.parse::<usize>() {
                if parsed == 0 {
                    eprintln!(
                        "[rm-imputers] warning: RM_BATCH=0 is below the floor of a \
                         1-sequence training batch; using batch_size = 1 instead"
                    );
                }
                return parsed.max(1);
            }
        }
        1
    })
}

/// One direction of the recurrent imputer: estimates each step's fingerprint
/// from the decayed hidden state, complements the observation, and feeds the
/// complemented vector (concatenated with its mask) to an LSTM cell.
pub(crate) struct RecurrentImputer {
    estimate: Linear,
    decay: Linear,
    cell: LstmCell,
    hidden_size: usize,
}

/// The per-step outputs of one directional pass.
pub(crate) struct DirectionalPass {
    /// Model estimates `x̂_t` (used by the reconstruction loss).
    pub estimates: Vec<Var>,
    /// Complemented vectors `x_c` (the imputations).
    pub complements: Vec<Var>,
}

impl RecurrentImputer {
    pub(crate) fn new(num_aps: usize, hidden_size: usize, rng: &mut StdRng) -> Self {
        Self {
            estimate: Linear::new(hidden_size, num_aps, rng),
            decay: Linear::new(num_aps, hidden_size, rng),
            cell: LstmCell::new(num_aps * 2, hidden_size, rng),
            hidden_size,
        }
    }

    pub(crate) fn parameters(&self) -> Vec<Var> {
        let mut params = self.estimate.parameters();
        params.extend(self.decay.parameters());
        params.extend(self.cell.parameters());
        params
    }

    /// Runs the imputer over one (already ordered) sequence.
    pub(crate) fn run(&self, seq: &PathSequence) -> DirectionalPass {
        let mut state = LstmState::zeros(self.hidden_size);
        let mut estimates = Vec::with_capacity(seq.len());
        let mut complements = Vec::with_capacity(seq.len());
        for t in 0..seq.len() {
            let x = Var::constant(Matrix::column(&seq.fingerprints[t]));
            let mask = Matrix::column(&seq.fingerprint_masks[t]);
            let lag = Var::constant(Matrix::column(&seq.time_lags[t]));

            // Estimate the fingerprint from the previous hidden state.
            let x_hat = self.estimate.forward(&state.h);
            // Complement: observed entries pass through, missing use the estimate.
            let inverse_mask = mask.map(|m| 1.0 - m);
            let x_c = x.mask(&mask).add(&x_hat.mask(&inverse_mask));
            // Temporal decay of the hidden state.
            let gamma = self.decay.forward(&lag).relu().scale(-1.0).exp();
            let decayed = LstmState {
                h: state.h.hadamard(&gamma),
                c: state.c.clone(),
            };
            let input = Var::concat_rows(&[x_c.clone(), Var::constant(mask.clone())]);
            state = self.cell.step(&input, &decayed);

            estimates.push(x_hat);
            complements.push(x_c);
        }
        DirectionalPass {
            estimates,
            complements,
        }
    }

    /// Copies the trained parameters into a graph-free, `Send + Sync`
    /// snapshot for the parallel inference pass. The snapshot is taken at
    /// the training precision (`f64`); round it with
    /// [`RecurrentImputerWeights::cast`] for the f32 inference path.
    pub(crate) fn snapshot(&self) -> RecurrentImputerWeights {
        RecurrentImputerWeights {
            estimate: self.estimate.snapshot(),
            decay: self.decay.snapshot(),
            cell: self.cell.snapshot(),
            hidden_size: self.hidden_size,
        }
    }
}

/// A graph-free snapshot of a trained [`RecurrentImputer`]. Unlike the
/// `Var`-based model (whose nodes are `Rc`-shared and thus thread-bound),
/// the snapshot holds plain matrices and can be shared by every worker of
/// the inference fan-out. [`RecurrentImputerWeights::run`] mirrors
/// [`RecurrentImputer::run`] operation for operation, so at `T = f64` the
/// imputations are bit-identical to running the autodiff graph forward; at
/// `T = f32` the same code runs through the single-precision kernels.
pub(crate) struct RecurrentImputerWeights<T: Scalar = f64> {
    estimate: LinearWeights<T>,
    decay: LinearWeights<T>,
    cell: LstmCellWeights<T>,
    hidden_size: usize,
}

impl RecurrentImputerWeights {
    /// Rebuilds a trainable [`RecurrentImputer`] from this snapshot: fresh
    /// parameter leaves holding copies of the snapshotted matrices, at the
    /// training precision (`f64`). This is the worker-side half of batched
    /// training — each sequence in a batch differentiates its own rebuilt
    /// replica, and only plain gradient matrices cross threads. The replica
    /// performs the same operations on the same values as the original, so
    /// its gradients are bit-identical to gradients computed on the live
    /// graph (see the parity tests below).
    pub(crate) fn to_model(&self) -> RecurrentImputer {
        RecurrentImputer {
            estimate: self.estimate.to_linear(),
            decay: self.decay.to_linear(),
            cell: self.cell.to_cell(),
            hidden_size: self.hidden_size,
        }
    }
}

impl<T: Scalar> RecurrentImputerWeights<T> {
    /// Rounds the snapshot to another precision (the one-time `f64 → f32`
    /// weight rounding of the f32 inference path).
    pub(crate) fn cast<U: Scalar>(&self) -> RecurrentImputerWeights<U> {
        RecurrentImputerWeights {
            estimate: self.estimate.cast(),
            decay: self.decay.cast(),
            cell: self.cell.cast(),
            hidden_size: self.hidden_size,
        }
    }

    /// Runs the imputer over one sequence, returning the complemented vector
    /// `x_c` of every step (the imputations; the reconstruction estimates are
    /// only needed for training). Sequence data is stored in `f64` and
    /// rounded per step, so the kernels — the hot path — run entirely in `T`.
    /// Every intermediate cycles through the caller-owned workspace `ws`
    /// (reuse is capacity-only — values are bit-identical to fresh buffers),
    /// so a steady-state inference step allocates nothing.
    pub(crate) fn run(&self, seq: &PathSequence, ws: &mut Workspace<T>) -> Vec<Matrix<T>> {
        // Seed the state from the workspace (bitwise zeros), so the buffers
        // retired at the end of one sequence serve the next.
        let mut state = LstmStateMatrix {
            h: ws.take(self.hidden_size, 1),
            c: ws.take(self.hidden_size, 1),
        };
        let mut complements = Vec::with_capacity(seq.len());
        // Scratch buffers reused across all steps of the sequence.
        let mut x_hat = Matrix::zeros(0, 0);
        let mut decay_pre = Matrix::zeros(0, 0);
        for t in 0..seq.len() {
            let x = Matrix::column_from_f64(&seq.fingerprints[t]);
            let mask = Matrix::<T>::column_from_f64(&seq.fingerprint_masks[t]);
            let lag = Matrix::column_from_f64(&seq.time_lags[t]);

            self.estimate.forward_into(&state.h, &mut x_hat);
            let inverse_mask = mask.map(|m| T::ONE - m);
            let x_c = &x.hadamard(&mask) + &x_hat.hadamard(&inverse_mask);
            // γ = exp(-relu(W_γ δ + b_γ)), matching relu → scale(-1) → exp.
            self.decay.forward_into(&lag, &mut decay_pre);
            let gamma = decay_pre.map(Scalar::relu).scale(-T::ONE).map(Scalar::exp);
            let decayed = LstmStateMatrix {
                h: state.h.hadamard(&gamma),
                c: state.c.clone(),
            };
            let input = x_c.vstack(&mask);
            let next = self.cell.step_ws(&input, &decayed, ws);
            ws.give(state.h);
            ws.give(state.c);
            ws.give(decayed.h);
            ws.give(decayed.c);
            ws.give(input);
            state = next;
            complements.push(x_c);
        }
        ws.give(state.h);
        ws.give(state.c);
        complements
    }

    /// Bytes the snapshot keeps resident at precision `T`.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.estimate.resident_bytes() + self.decay.resident_bytes() + self.cell.resident_bytes()
    }

    /// Returns the snapshot's matrices to `ws` for capacity reuse — the
    /// give-back half of a per-task [`RecurrentImputerWeightsBf16::decode_ws`]
    /// cycle.
    pub(crate) fn recycle(self, ws: &mut Workspace<T>) {
        self.estimate.recycle(ws);
        self.decay.recycle(ws);
        self.cell.recycle(ws);
    }
}

/// A [`RecurrentImputerWeights<f32>`] snapshot stored as truncated bfloat16:
/// the `RM_SNAPSHOT_DTYPE=bf16` resident form — half the bytes of the f32
/// snapshot — decoded into pooled f32 scratch once per inference task.
pub(crate) struct RecurrentImputerWeightsBf16 {
    estimate: LinearWeightsBf16,
    decay: LinearWeightsBf16,
    cell: LstmCellWeightsBf16,
    hidden_size: usize,
}

impl RecurrentImputerWeightsBf16 {
    /// Encodes an f32 snapshot by truncating every weight to bfloat16.
    pub(crate) fn from_weights(w: &RecurrentImputerWeights<f32>) -> Self {
        Self {
            estimate: LinearWeightsBf16::from_weights(&w.estimate),
            decay: LinearWeightsBf16::from_weights(&w.decay),
            cell: LstmCellWeightsBf16::from_weights(&w.cell),
            hidden_size: w.hidden_size,
        }
    }

    /// Decodes into an f32 snapshot whose matrices are checked out of `ws`;
    /// pair with [`RecurrentImputerWeights::recycle`] to return them.
    pub(crate) fn decode_ws(&self, ws: &mut Workspace<f32>) -> RecurrentImputerWeights<f32> {
        RecurrentImputerWeights {
            estimate: self.estimate.decode_ws(ws),
            decay: self.decay.decode_ws(ws),
            cell: self.cell.decode_ws(ws),
            hidden_size: self.hidden_size,
        }
    }

    /// Bytes the snapshot keeps resident (2 per weight).
    pub(crate) fn resident_bytes(&self) -> usize {
        self.estimate.resident_bytes() + self.decay.resident_bytes() + self.cell.resident_bytes()
    }
}

/// Resident snapshot bytes of one recurrent-imputer direction with the
/// given shape, at each storage dtype: `(f64, f32, bf16)`. The reporting
/// hook behind the `exp_snapshot_storage` experiment — it measures the
/// actual inference-path snapshot types, so the `f32 = f64 / 2` and
/// `bf16 = f32 / 2` ratios it returns are the ratios the serving path pays.
pub fn snapshot_resident_bytes(num_aps: usize, hidden_size: usize) -> (usize, usize, usize) {
    let mut rng = StdRng::seed_from_u64(0);
    let model = RecurrentImputer::new(num_aps, hidden_size, &mut rng);
    let w64 = model.snapshot();
    let w32 = w64.cast::<f32>();
    let packed = RecurrentImputerWeightsBf16::from_weights(&w32);
    (
        w64.resident_bytes(),
        w32.resident_bytes(),
        packed.resident_bytes(),
    )
}

/// Differentiates the combined BRITS loss of one `(sequence, reversed)` pair
/// — forward/backward reconstruction plus the cross-direction consistency
/// term — and returns the per-parameter gradients in optimizer order
/// (forward-direction parameters, then backward-direction).
///
/// The caller must ensure the models' gradient buffers are zero on entry:
/// freshly rebuilt replicas ([`RecurrentImputerWeights::to_model`]) start
/// zeroed, and the live-graph fast path zeroes through its optimizer.
fn pair_gradients(
    forward: &RecurrentImputer,
    backward: &RecurrentImputer,
    seq: &PathSequence,
    rev: &PathSequence,
) -> Vec<Matrix<f64>> {
    let fwd = forward.run(seq);
    let bwd = backward.run(rev);
    let mut total = Var::scalar(0.0);
    for t in 0..seq.len() {
        let target = Matrix::column(&seq.fingerprints[t]);
        let m = Matrix::column(&seq.fingerprint_masks[t]);
        total = total.add(&loss::masked_mse(&fwd.estimates[t], &target, &m));
        let rt = rev.len() - 1 - t;
        let target_b = Matrix::column(&rev.fingerprints[rt]);
        let m_b = Matrix::column(&rev.fingerprint_masks[rt]);
        total = total.add(&loss::masked_mse(&bwd.estimates[rt], &target_b, &m_b));
        // Consistency between the two directions at the same record.
        total = total.add(
            &loss::masked_mse_between(&fwd.complements[t], &bwd.complements[rt], &m).scale(0.1),
        );
    }
    let loss = total.scale(1.0 / seq.len() as f64);
    loss.backward();
    let mut params = forward.parameters();
    params.extend(backward.parameters());
    let grads = params.iter().map(|p| p.grad()).collect();
    // The gradients are out; return the step's graph — both passes, the
    // loss chain and every intermediate — to the per-worker node arena so
    // the next sequence rebuilds on recycled storage. The parameter leaves
    // are still held by the models and are skipped by the recycler.
    drop(params);
    Var::recycle_all(
        fwd.estimates
            .into_iter()
            .chain(fwd.complements)
            .chain(bwd.estimates)
            .chain(bwd.complements)
            .chain([total, loss]),
    );
    grads
}

/// Runs the deterministic mini-batch training loop shared by the batched
/// recurrent trainers: the epoch is split into fixed-boundary chunks of
/// `batch_size` sequence indices, each chunk's per-sequence gradients are
/// produced by `grads` (fanned out by the caller where profitable), summed
/// in sequence-index order into a [`GradientBatch`], and applied as one
/// optimizer step.
///
/// `grads(chunk)` must return one gradient list per index in `chunk`, in
/// chunk order — [`rm_runtime::par_map`] over the chunk satisfies this by
/// construction. Because the boundaries depend only on `batch_size` and the
/// reduction order only on the sequence index, the resulting trajectory is
/// bitwise independent of the thread count.
pub fn train_in_batches<T: Scalar>(
    optimizer: &mut impl Optimizer<T>,
    epochs: usize,
    num_sequences: usize,
    batch_size: usize,
    mut grads: impl FnMut(&[usize]) -> Vec<Vec<Matrix<T>>>,
) {
    let batch_size = batch_size.max(1);
    let indices: Vec<usize> = (0..num_sequences).collect();
    for _ in 0..epochs {
        for chunk in indices.chunks(batch_size) {
            let per_sequence = grads(chunk);
            debug_assert_eq!(per_sequence.len(), chunk.len());
            let mut batch = GradientBatch::zeros_like(optimizer.parameters());
            for sequence_grads in &per_sequence {
                batch.accumulate(sequence_grads);
            }
            optimizer.apply_batch(&batch);
        }
    }
}

/// The bidirectional inference fan-out, generic over the kernel precision:
/// every `(sequence, reversed)` pair runs through the shared weight
/// snapshots on the pool, and the forward/backward complements are averaged
/// at MAR positions. Denormalisation happens after widening back to `f64`,
/// so the returned `(record, ap, rssi)` triples are precision-independent in
/// type (not in value). Each task only reads the shared snapshots, so the
/// fan-out is order-preserving and bit-identical at any thread count.
fn infer_mar_values<T: Scalar>(
    forward: &RecurrentImputerWeights<T>,
    backward: &RecurrentImputerWeights<T>,
    pairs: &[(&PathSequence, &PathSequence)],
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    threads: usize,
) -> Vec<Vec<(usize, usize, f64)>> {
    rm_runtime::par_map(threads, pairs, |_, &(seq, rev)| {
        // Per-task scratch: the workspace itself is cheap, and the matrix
        // buffers it hands out come from the worker's thread-local pool, so
        // steady-state inference tasks allocate nothing.
        let mut ws = Workspace::new();
        mar_values_for_pair(forward, backward, seq, rev, mask, norm, num_aps, &mut ws)
    })
}

/// One `(sequence, reversed)` pair of the inference fan-out: runs both
/// directions through the shared snapshots and averages the complements at
/// MAR positions. Shared by the native-dtype fan-out ([`infer_mar_values`])
/// and the bf16 fan-out ([`infer_mar_values_bf16`]).
#[allow(clippy::too_many_arguments)]
fn mar_values_for_pair<T: Scalar>(
    forward: &RecurrentImputerWeights<T>,
    backward: &RecurrentImputerWeights<T>,
    seq: &PathSequence,
    rev: &PathSequence,
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    ws: &mut Workspace<T>,
) -> Vec<(usize, usize, f64)> {
    let fwd = forward.run(seq, ws);
    let bwd = backward.run(rev, ws);
    let mut values: Vec<(usize, usize, f64)> = Vec::new();
    for (t, &record) in seq.record_indices.iter().enumerate() {
        let rt = rev.len() - 1 - t;
        for ap in 0..num_aps {
            if mask.get(record, ap) == EntryKind::Mar {
                let avg = (fwd[t].get(ap, 0) + bwd[rt].get(ap, 0)) / T::from_f64(2.0);
                values.push((record, ap, norm.denormalize_rssi(avg.to_f64())));
            }
        }
    }
    values
}

/// The bf16-resident variant of [`infer_mar_values`]: each task decodes the
/// shared bfloat16 snapshots into its own pooled f32 scratch, runs the same
/// f32 inference, and recycles the decoded matrices. Decoding is pure and
/// per-task, so the fan-out stays bit-identical at any thread count.
fn infer_mar_values_bf16(
    forward: &RecurrentImputerWeightsBf16,
    backward: &RecurrentImputerWeightsBf16,
    pairs: &[(&PathSequence, &PathSequence)],
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    threads: usize,
) -> Vec<Vec<(usize, usize, f64)>> {
    rm_runtime::par_map(threads, pairs, |_, &(seq, rev)| {
        let mut ws = Workspace::new();
        let fwd = forward.decode_ws(&mut ws);
        let bwd = backward.decode_ws(&mut ws);
        let values = mar_values_for_pair(&fwd, &bwd, seq, rev, mask, norm, num_aps, &mut ws);
        fwd.recycle(&mut ws);
        bwd.recycle(&mut ws);
        values
    })
}

/// Exports one direction's trained snapshot as `brits.{prefix}.*` named
/// tensors at the dtype the inference path keeps resident (see
/// [`crate::snapshot::export_linear`] for the dtype contract: exported bits
/// equal the serving bits in every mode).
fn export_direction(
    prefix: &str,
    weights: &RecurrentImputerWeights,
    precision: Precision,
    snapshot_dtype: SnapshotDtype,
    tensors: &mut Vec<NamedTensor>,
) {
    export_recurrent(
        &format!("brits.{prefix}"),
        weights,
        precision,
        snapshot_dtype,
        tensors,
    );
}

/// Exports one direction's trained weights under `{prefix}.{layer}` names
/// via the shared [`crate::snapshot`] helpers (see [`export_direction`] for
/// the BRITS naming; SSGAN reuses this for its generator).
pub(crate) fn export_recurrent(
    prefix: &str,
    weights: &RecurrentImputerWeights,
    precision: Precision,
    snapshot_dtype: SnapshotDtype,
    tensors: &mut Vec<NamedTensor>,
) {
    snapshot::export_linear(
        &format!("{prefix}.estimate"),
        &weights.estimate,
        precision,
        snapshot_dtype,
        tensors,
    );
    snapshot::export_linear(
        &format!("{prefix}.decay"),
        &weights.decay,
        precision,
        snapshot_dtype,
        tensors,
    );
    snapshot::export_lstm_cell(prefix, &weights.cell, precision, snapshot_dtype, tensors);
}

/// Rebuilds one direction's weights from the tensors exported by
/// [`export_recurrent`] under `prefix`, validating every shape against a
/// `num_aps`-AP map. Returns `None` — the caller then falls back to cold
/// training — when a tensor is missing or the snapshot was trained for a
/// different map shape.
pub(crate) fn import_recurrent(
    prefix: &str,
    tensors: &[NamedTensor],
    num_aps: usize,
) -> Option<RecurrentImputerWeights> {
    let estimate = snapshot::import_linear(tensors, prefix, "estimate")?;
    let decay = snapshot::import_linear(tensors, prefix, "decay")?;
    let cell = snapshot::import_lstm_cell(tensors, prefix)?;

    // `estimate` maps hidden → APs, `decay` maps APs → hidden, and each gate
    // maps the concatenated `[x_c; mask]` input plus the hidden state to the
    // hidden size — reject anything else before it can panic downstream.
    let hidden_size = estimate.weight().cols();
    if hidden_size == 0
        || estimate.weight().shape() != (num_aps, hidden_size)
        || decay.weight().shape() != (hidden_size, num_aps)
        || cell.gates()[0].weight().shape() != (hidden_size, num_aps * 2 + hidden_size)
    {
        return None;
    }
    Some(RecurrentImputerWeights {
        estimate,
        decay,
        cell,
        hidden_size,
    })
}

/// The BRITS imputer.
#[derive(Default)]
pub struct Brits {
    /// Training configuration.
    pub config: BritsConfig,
}

impl Brits {
    /// Creates a BRITS imputer with the given configuration.
    pub fn new(config: BritsConfig) -> Self {
        Self { config }
    }

    /// The fallback result when there is nothing to train on: observed
    /// entries pass through, MNARs take the fill floor, RPs interpolate.
    /// (Shared with SSGAN, whose fallback is identical.)
    pub(crate) fn passthrough(map: &RadioMap) -> ImputedRadioMap {
        ImputedRadioMap {
            fingerprints: map
                .records()
                .iter()
                .map(|r| r.fingerprint.to_dense(MNAR_FILL_VALUE))
                .collect(),
            locations: map.interpolate_rps(),
        }
    }

    /// Prepares the backward-direction inputs. Reversing a sequence is pure,
    /// so they are prepared in parallel (serially below the sequence count
    /// that amortises the spawn cost — see [`crate::gates`]).
    fn reverse_sequences(
        &self,
        sequences: &[PathSequence],
        norm: &Normalization,
    ) -> Vec<PathSequence> {
        let reversal_threads = if sequences.len() < gates::brits_reversal_min_sequences() {
            1
        } else {
            self.config.threads
        };
        rm_runtime::par_map(reversal_threads, sequences, |_, s| s.reversed(norm))
    }

    /// Deterministic mini-batch training of one forward/backward model pair
    /// for `epochs` epochs: the epoch is chunked into fixed-boundary batches
    /// of `batch_size` sequences. Within a batch the per-sequence losses are
    /// independent given the batch-start weights, so each sequence
    /// differentiates its own detached graph replica (rebuilt from a
    /// `Send + Sync` weight snapshot) on the worker pool, and only the
    /// extracted gradient matrices cross threads; the sums reduce in
    /// sequence-index order, so the model is bitwise thread-count
    /// independent. Single-sequence batches — the `batch_size = 1` default
    /// in particular — skip the snapshot/rebuild round-trip and
    /// differentiate the live graph directly, reproducing the classic serial
    /// SGD trajectory bitwise (parity-tested below). Shared by cold training
    /// ([`Brits::impute_inner`]) and warm fine-tuning
    /// ([`Brits::impute_warm_inner`]), which differ only in where the
    /// starting weights come from.
    fn train_pair(
        &self,
        forward: &RecurrentImputer,
        backward: &RecurrentImputer,
        sequences: &[PathSequence],
        reversed: &[PathSequence],
        epochs: usize,
    ) {
        let mut params = forward.parameters();
        params.extend(backward.parameters());
        let mut optimizer = Adam::new(params, self.config.learning_rate).with_clip(5.0);
        let threads = self.config.threads;
        train_in_batches(
            &mut optimizer,
            epochs,
            sequences.len(),
            self.config.batch_size,
            |chunk| {
                if let [i] = *chunk {
                    for p in forward.parameters().iter().chain(&backward.parameters()) {
                        p.zero_grad();
                    }
                    vec![pair_gradients(
                        forward,
                        backward,
                        &sequences[i],
                        &reversed[i],
                    )]
                } else {
                    let fw = forward.snapshot();
                    let bw = backward.snapshot();
                    rm_runtime::par_map(threads, chunk, |_, &i| {
                        pair_gradients(&fw.to_model(), &bw.to_model(), &sequences[i], &reversed[i])
                    })
                }
            },
        );
    }

    /// Produces imputations from a trained weight pair — average of forward
    /// and backward complements at MAR positions — plus the optional tensor
    /// export. The weights are rounded once to f32 when the config asks for
    /// single-precision inference, and every sequence's inference fans out
    /// over the pool; each task only reads the shared snapshot and writes
    /// values for its own (disjoint) records, so the merge is
    /// order-independent.
    fn infer_and_export(
        &self,
        forward_weights: &RecurrentImputerWeights,
        backward_weights: &RecurrentImputerWeights,
        sequences: &[PathSequence],
        reversed: &[PathSequence],
        map: &RadioMap,
        mask: &MaskMatrix,
        norm: &Normalization,
        export_snapshot: bool,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        let num_aps = map.num_aps();
        let ImputedRadioMap {
            mut fingerprints,
            locations,
        } = Self::passthrough(map);
        let tensors = if export_snapshot {
            let mut tensors = Vec::with_capacity(24);
            for (prefix, weights) in [("forward", forward_weights), ("backward", backward_weights)]
            {
                export_direction(
                    prefix,
                    weights,
                    self.config.precision,
                    self.config.snapshot_dtype,
                    &mut tensors,
                );
            }
            tensors
        } else {
            Vec::new()
        };
        let pairs: Vec<(&PathSequence, &PathSequence)> =
            sequences.iter().zip(reversed.iter()).collect();
        let threads = self.config.threads;
        let imputations = match (self.config.precision, self.config.snapshot_dtype) {
            (Precision::F64, _) => infer_mar_values(
                forward_weights,
                backward_weights,
                &pairs,
                mask,
                norm,
                num_aps,
                threads,
            ),
            (Precision::F32, SnapshotDtype::Native) => infer_mar_values(
                &forward_weights.cast::<f32>(),
                &backward_weights.cast::<f32>(),
                &pairs,
                mask,
                norm,
                num_aps,
                threads,
            ),
            (Precision::F32, SnapshotDtype::Bf16) => infer_mar_values_bf16(
                &RecurrentImputerWeightsBf16::from_weights(&forward_weights.cast::<f32>()),
                &RecurrentImputerWeightsBf16::from_weights(&backward_weights.cast::<f32>()),
                &pairs,
                mask,
                norm,
                num_aps,
                threads,
            ),
        };
        for values in imputations {
            for (record, ap, value) in values {
                fingerprints[record][ap] = value;
            }
        }

        (
            ImputedRadioMap {
                fingerprints,
                locations,
            },
            tensors,
        )
    }

    /// The shared train-then-infer body behind both [`Imputer`] entry
    /// points; `export_snapshot` additionally serializes the trained weights
    /// as named tensors (training and inference are unaffected by the flag).
    fn impute_inner(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        export_snapshot: bool,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        let num_aps = map.num_aps();
        let norm = Normalization::from_map(map);
        let sequences = build_sequences(map, mask, self.config.sequence_length, &norm);
        if sequences.is_empty() || num_aps == 0 {
            return (Self::passthrough(map), Vec::new());
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let forward = RecurrentImputer::new(num_aps, self.config.hidden_size, &mut rng);
        let backward = RecurrentImputer::new(num_aps, self.config.hidden_size, &mut rng);
        let reversed = self.reverse_sequences(&sequences, &norm);
        self.train_pair(
            &forward,
            &backward,
            &sequences,
            &reversed,
            self.config.epochs,
        );
        self.infer_and_export(
            &forward.snapshot(),
            &backward.snapshot(),
            &sequences,
            &reversed,
            map,
            mask,
            &norm,
            export_snapshot,
        )
    }

    /// The warm-start body: `Some` when the snapshot round-trips into this
    /// map's architecture, `None` to fall back to the cold path.
    ///
    /// With `fine_tune_epochs = 0` the imported weights run inference as-is:
    /// importing widens every storage dtype losslessly to `f64`, and the
    /// inference path re-applies the same one-time rounding the exporting
    /// run applied, so on an unchanged map the replay is bit-identical to
    /// the run that exported the snapshot. With `fine_tune_epochs > 0` the
    /// weights seed a fresh optimizer for that many additional mini-batch
    /// epochs — a cheap incremental refresh, not a replay.
    fn impute_warm_inner(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        warm: &[NamedTensor],
        fine_tune_epochs: usize,
    ) -> Option<(ImputedRadioMap, Vec<NamedTensor>)> {
        let num_aps = map.num_aps();
        if num_aps == 0 {
            return None;
        }
        let forward_weights = import_recurrent("brits.forward", warm, num_aps)?;
        let backward_weights = import_recurrent("brits.backward", warm, num_aps)?;

        let norm = Normalization::from_map(map);
        let sequences = build_sequences(map, mask, self.config.sequence_length, &norm);
        if sequences.is_empty() {
            return None;
        }
        let reversed = self.reverse_sequences(&sequences, &norm);

        let (forward_weights, backward_weights) = if fine_tune_epochs == 0 {
            (forward_weights, backward_weights)
        } else {
            let forward = forward_weights.to_model();
            let backward = backward_weights.to_model();
            self.train_pair(&forward, &backward, &sequences, &reversed, fine_tune_epochs);
            (forward.snapshot(), backward.snapshot())
        };
        Some(self.infer_and_export(
            &forward_weights,
            &backward_weights,
            &sequences,
            &reversed,
            map,
            mask,
            &norm,
            true,
        ))
    }
}

impl Imputer for Brits {
    fn impute(&self, map: &RadioMap, mask: &MaskMatrix) -> ImputedRadioMap {
        self.impute_inner(map, mask, false).0
    }

    fn impute_with_snapshot(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        self.impute_inner(map, mask, true)
    }

    fn impute_warm(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        warm: &[NamedTensor],
        fine_tune_epochs: usize,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        match self.impute_warm_inner(map, mask, warm, fine_tune_epochs) {
            Some(out) => out,
            None => self.impute_with_snapshot(map, mask),
        }
    }

    fn name(&self) -> &'static str {
        "BRITS"
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use rm_geometry::Point;
    use rm_radiomap::{Fingerprint, RadioMapRecord};

    /// A path whose AP0 RSSI varies smoothly in time; one value is MAR.
    pub(crate) fn smooth_map() -> (RadioMap, MaskMatrix) {
        let mut records = Vec::new();
        for i in 0..10 {
            let v = -60.0 - i as f64;
            let value = if i == 5 { None } else { Some(v) };
            records.push(RadioMapRecord::new(
                Fingerprint::new(vec![value, Some(-80.0)]),
                Some(Point::new(i as f64, 0.0)),
                i as f64 * 2.0,
                0,
            ));
        }
        let map = RadioMap::new(records, 2);
        let mut mask = MaskMatrix::all_observed(10, 2);
        mask.set(5, 0, EntryKind::Mar);
        (map, mask)
    }

    fn quick_config() -> BritsConfig {
        BritsConfig {
            hidden_size: 16,
            epochs: 30,
            learning_rate: 0.02,
            sequence_length: 5,
            seed: 3,
            threads: 0,
            batch_size: 1,
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
        }
    }

    #[test]
    fn brits_imputes_a_plausible_mar_value() {
        let (map, mask) = smooth_map();
        let out = Brits::new(quick_config()).impute(&map, &mask);
        let imputed = out.rssi(5, 0);
        // The surrounding observations are in [-69, -61]; the imputation must
        // land far from the -100 floor and inside the plausible band.
        assert!(
            (-80.0..=-50.0).contains(&imputed),
            "imputed value {imputed} is implausible"
        );
        // Observed entries pass through unchanged.
        assert_eq!(out.rssi(0, 0), -60.0);
        assert_eq!(out.rssi(3, 1), -80.0);
        assert_eq!(Brits::default().name(), "BRITS");
    }

    /// The f32 inference path must stay close to the f64 path: same trained
    /// weights, only the inference kernels rounded. On the smooth test map
    /// the two imputations agree to well under a tenth of a dBm.
    #[test]
    fn brits_f32_inference_tracks_the_f64_path() {
        let (map, mask) = smooth_map();
        let f64_out = Brits::new(quick_config()).impute(&map, &mask);
        let f32_out = Brits::new(BritsConfig {
            precision: Precision::F32,
            ..quick_config()
        })
        .impute(&map, &mask);
        let a = f64_out.rssi(5, 0);
        let b = f32_out.rssi(5, 0);
        assert!(
            (a - b).abs() < 0.1,
            "f32 imputation {b} drifted from f64 imputation {a}"
        );
        // Observed entries pass through identically at either precision.
        assert_eq!(f32_out.rssi(0, 0).to_bits(), f64_out.rssi(0, 0).to_bits());
    }

    /// The bf16-resident path decodes the truncated snapshot per task and
    /// runs the same f32 kernels, so its imputation stays within the bf16
    /// truncation epsilon of the native-f32 path (and the snapshot itself is
    /// half the resident bytes, checked at the weight level).
    #[test]
    fn brits_bf16_snapshots_track_the_f32_path() {
        let (map, mask) = smooth_map();
        let f32_out = Brits::new(BritsConfig {
            precision: Precision::F32,
            ..quick_config()
        })
        .impute(&map, &mask);
        let bf16_out = Brits::new(BritsConfig {
            precision: Precision::F32,
            snapshot_dtype: SnapshotDtype::Bf16,
            ..quick_config()
        })
        .impute(&map, &mask);
        let a = f32_out.rssi(5, 0);
        let b = bf16_out.rssi(5, 0);
        // Normalised activations are O(1), so the 2^-7 weight truncation
        // moves the denormalised dBm value by well under 1 dBm on this map.
        assert!(
            (a - b).abs() < 1.0,
            "bf16 imputation {b} drifted from f32 imputation {a}"
        );
        // Observed entries pass through identically.
        assert_eq!(bf16_out.rssi(0, 0).to_bits(), f32_out.rssi(0, 0).to_bits());

        // Resident-bytes contract at the snapshot level: bf16 is exactly
        // half the f32 snapshot, a quarter of the f64 training snapshot.
        let mut rng = StdRng::seed_from_u64(5);
        let model = RecurrentImputer::new(2, 16, &mut rng);
        let w64 = model.snapshot();
        let w32 = w64.cast::<f32>();
        let packed = RecurrentImputerWeightsBf16::from_weights(&w32);
        assert_eq!(packed.resident_bytes() * 2, w32.resident_bytes());
        assert_eq!(packed.resident_bytes() * 4, w64.resident_bytes());
    }

    /// The snapshot export carries exactly the bits the inference path keeps
    /// resident, at every point of the precision × dtype axis, without
    /// perturbing the imputation itself.
    #[test]
    fn snapshot_export_matches_resident_dtype_and_leaves_imputation_unchanged() {
        let (map, mask) = smooth_map();
        for (precision, snapshot_dtype, expected_dtype) in [
            (Precision::F64, SnapshotDtype::Native, "f64"),
            (Precision::F32, SnapshotDtype::Native, "f32"),
            (Precision::F32, SnapshotDtype::Bf16, "bf16"),
        ] {
            let config = BritsConfig {
                epochs: 3,
                precision,
                snapshot_dtype,
                ..quick_config()
            };
            let (out, tensors) = Brits::new(config.clone()).impute_with_snapshot(&map, &mask);
            // 2 directions × (estimate + decay + 4 LSTM gates) × (weight, bias).
            assert_eq!(tensors.len(), 24);
            let mut names: Vec<&str> = tensors.iter().map(|t| t.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 24, "tensor names must be unique");
            for t in &tensors {
                assert_eq!(t.payload.dtype_name(), expected_dtype, "{}", t.name);
                assert!(t.payload.rows() > 0 && t.payload.cols() > 0);
            }
            // Export is observation-only: same imputation as plain impute().
            let plain = Brits::new(config).impute(&map, &mask);
            for (a, b) in plain
                .fingerprints
                .iter()
                .flatten()
                .zip(out.fingerprints.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // The dtype axis shrinks the artifact payload 2× per step: the f64
        // export is 4× the bytes of the bf16 export of the same weights.
        let export = |snapshot_dtype, precision| {
            Brits::new(BritsConfig {
                epochs: 1,
                precision,
                snapshot_dtype,
                ..quick_config()
            })
            .impute_with_snapshot(&map, &mask)
            .1
            .iter()
            .map(|t| t.payload.payload_bytes())
            .sum::<usize>()
        };
        let f64_bytes = export(SnapshotDtype::Native, Precision::F64);
        let bf16_bytes = export(SnapshotDtype::Bf16, Precision::F32);
        assert_eq!(f64_bytes, bf16_bytes * 4);
    }

    /// Baselines without a trained snapshot fall back to the default hook:
    /// same imputation, empty tensor list.
    #[test]
    fn default_snapshot_hook_returns_no_tensors() {
        let (map, mask) = smooth_map();
        let li = crate::LinearInterpolation;
        let (out, tensors) = li.impute_with_snapshot(&map, &mask);
        assert!(tensors.is_empty());
        assert_eq!(out.fingerprints, li.impute(&map, &mask).fingerprints);
    }

    /// The warm-start replay contract: at every point of the precision ×
    /// dtype axis, importing a snapshot and re-running inference with
    /// `fine_tune_epochs = 0` on the unchanged map reproduces the exporting
    /// run's imputation — and re-exports the same tensor bits.
    #[test]
    fn warm_replay_reproduces_the_exporting_run_bitwise() {
        let (map, mask) = smooth_map();
        for (precision, snapshot_dtype) in [
            (Precision::F64, SnapshotDtype::Native),
            (Precision::F32, SnapshotDtype::Native),
            (Precision::F32, SnapshotDtype::Bf16),
        ] {
            let brits = Brits::new(BritsConfig {
                epochs: 3,
                precision,
                snapshot_dtype,
                ..quick_config()
            });
            let (cold, tensors) = brits.impute_with_snapshot(&map, &mask);
            let (warm, re_exported) = brits.impute_warm(&map, &mask, &tensors, 0);
            for (a, b) in cold
                .fingerprints
                .iter()
                .flatten()
                .zip(warm.fingerprints.iter().flatten())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "warm replay drifted from cold run"
                );
            }
            assert_eq!(re_exported.len(), tensors.len());
            for (a, b) in tensors.iter().zip(re_exported.iter()) {
                assert!(a.bits_eq(b), "re-exported tensor {} drifted", a.name);
            }
        }
    }

    /// Fine-tuning resumes training from the imported weights: the result
    /// stays plausible, fresh tensors come back, and the weights actually
    /// move (a fresh optimizer step is not a no-op).
    #[test]
    fn warm_fine_tune_updates_the_snapshot() {
        let (map, mask) = smooth_map();
        let brits = Brits::new(BritsConfig {
            epochs: 3,
            ..quick_config()
        });
        let (_, tensors) = brits.impute_with_snapshot(&map, &mask);
        let (out, tuned) = brits.impute_warm(&map, &mask, &tensors, 2);
        assert_eq!(tuned.len(), 24);
        assert!((-90.0..=-40.0).contains(&out.rssi(5, 0)));
        assert!(
            tensors.iter().zip(tuned.iter()).any(|(a, b)| !a.bits_eq(b)),
            "fine-tuning left every weight bit-unchanged"
        );
    }

    /// Empty, foreign, or shape-incompatible snapshots fall back to the cold
    /// path bitwise — warm-starting is always safe to attempt.
    #[test]
    fn warm_with_unusable_snapshot_falls_back_to_cold_training() {
        let (map, mask) = smooth_map();
        let brits = Brits::new(quick_config());
        let (cold, _) = brits.impute_with_snapshot(&map, &mask);
        let foreign = vec![NamedTensor::new(
            "brits.forward.estimate.weight",
            Matrix::<f64>::filled(3, 7, 0.5),
        )];
        for warm in [&Vec::new(), &foreign] {
            let (out, tensors) = brits.impute_warm(&map, &mask, warm, 0);
            assert_eq!(tensors.len(), 24);
            for (a, b) in cold
                .fingerprints
                .iter()
                .flatten()
                .zip(out.fingerprints.iter().flatten())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn brits_uses_linear_interpolation_for_rps() {
        let (mut map, mask) = smooth_map();
        map.records_mut()[4].rp = None;
        let out = Brits::new(quick_config()).impute(&map, &mask);
        let p = out.locations[4].unwrap();
        assert!((p.x - 4.0).abs() < 1e-6);
    }

    #[test]
    fn brits_handles_empty_map() {
        let out =
            Brits::new(quick_config()).impute(&RadioMap::empty(3), &MaskMatrix::all_observed(0, 3));
        assert!(out.is_empty());
    }

    #[test]
    fn default_epochs_respects_env() {
        // Just exercise the parsing path; the value depends on the environment.
        let e = default_epochs();
        assert!(e >= 1);
        // The process-level cache makes repeated reads agree by construction.
        assert_eq!(e, default_epochs());
        let b = default_batch_size();
        assert!(b >= 1);
        assert_eq!(b, default_batch_size());
    }

    /// The worker-side graph rebuild must not perturb the trajectory: the
    /// gradients of a `(sequence, reversed)` pair computed on replicas
    /// rebuilt from weight snapshots are bit-identical to gradients computed
    /// on the live graph. This is the property that makes the snapshot
    /// fan-out of `batch_size > 1` and the live-graph fast path of
    /// single-sequence batches two schedules of the same computation.
    #[test]
    fn rebuilt_replica_gradients_match_live_graph_bitwise() {
        let (map, mask) = smooth_map();
        let norm = Normalization::from_map(&map);
        let sequences = build_sequences(&map, &mask, 5, &norm);
        let reversed: Vec<PathSequence> = sequences.iter().map(|s| s.reversed(&norm)).collect();
        let mut rng = StdRng::seed_from_u64(17);
        let forward = RecurrentImputer::new(2, 12, &mut rng);
        let backward = RecurrentImputer::new(2, 12, &mut rng);
        for (seq, rev) in sequences.iter().zip(reversed.iter()) {
            for p in forward.parameters().iter().chain(&backward.parameters()) {
                p.zero_grad();
            }
            let live = pair_gradients(&forward, &backward, seq, rev);
            let replica = pair_gradients(
                &forward.snapshot().to_model(),
                &backward.snapshot().to_model(),
                seq,
                rev,
            );
            assert_eq!(live.len(), replica.len());
            for (a, b) in live.iter().zip(replica.iter()) {
                assert!(a.bits_eq(b), "replica gradient drifted from live graph");
            }
        }
    }

    /// The pre-batching reference: trains with the literal pre-PR-5 serial
    /// dependency-chain loop (`zero_grad → backward → step` per sequence on
    /// the live graph) and returns the inferred `(record, ap, rssi)` MAR
    /// values from the trained weights.
    fn serial_reference_values(
        config: &BritsConfig,
        map: &RadioMap,
        mask: &MaskMatrix,
    ) -> Vec<(usize, usize, f64)> {
        let num_aps = map.num_aps();
        let norm = Normalization::from_map(map);
        let sequences = build_sequences(map, mask, config.sequence_length, &norm);
        let reversed: Vec<PathSequence> = sequences.iter().map(|s| s.reversed(&norm)).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let forward = RecurrentImputer::new(num_aps, config.hidden_size, &mut rng);
        let backward = RecurrentImputer::new(num_aps, config.hidden_size, &mut rng);
        let mut params = forward.parameters();
        params.extend(backward.parameters());
        let mut optimizer = Adam::new(params, config.learning_rate).with_clip(5.0);
        for _ in 0..config.epochs {
            for (seq, rev) in sequences.iter().zip(reversed.iter()) {
                optimizer.zero_grad();
                let fwd = forward.run(seq);
                let bwd = backward.run(rev);
                let mut total = Var::scalar(0.0);
                for t in 0..seq.len() {
                    let target = Matrix::column(&seq.fingerprints[t]);
                    let m = Matrix::column(&seq.fingerprint_masks[t]);
                    total = total.add(&loss::masked_mse(&fwd.estimates[t], &target, &m));
                    let rt = rev.len() - 1 - t;
                    let target_b = Matrix::column(&rev.fingerprints[rt]);
                    let m_b = Matrix::column(&rev.fingerprint_masks[rt]);
                    total = total.add(&loss::masked_mse(&bwd.estimates[rt], &target_b, &m_b));
                    total = total.add(
                        &loss::masked_mse_between(&fwd.complements[t], &bwd.complements[rt], &m)
                            .scale(0.1),
                    );
                }
                total.scale(1.0 / seq.len() as f64).backward();
                optimizer.step();
            }
        }
        let pairs: Vec<(&PathSequence, &PathSequence)> =
            sequences.iter().zip(reversed.iter()).collect();
        infer_mar_values(
            &forward.snapshot(),
            &backward.snapshot(),
            &pairs,
            mask,
            &norm,
            num_aps,
            1,
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// `batch_size = 1` (the default) reproduces the pre-batching serial SGD
    /// trajectory bitwise.
    #[test]
    fn batch_size_one_reproduces_the_serial_sgd_trajectory() {
        let (map, mask) = smooth_map();
        let config = quick_config();
        let batched = Brits::new(config.clone()).impute(&map, &mask);
        let reference = serial_reference_values(&config, &map, &mask);
        assert!(!reference.is_empty());
        for (record, ap, value) in reference {
            assert_eq!(
                batched.rssi(record, ap).to_bits(),
                value.to_bits(),
                "batch_size = 1 diverged from the serial reference at ({record}, {ap})"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// Property form of the trajectory-parity contract: over random path
        /// maps, missing patterns and training shapes, `batch_size = 1`
        /// reproduces the pre-PR-5 serial SGD trajectory bit for bit.
        #[test]
        fn batch_size_one_matches_serial_reference_on_random_maps(
            num_records in 6usize..14,
            num_aps in 2usize..4,
            missing_stride in 2usize..5,
            epochs in 1usize..4,
            seed in 0u64..1_000,
        ) {
            let mut records = Vec::new();
            for i in 0..num_records {
                let values: Vec<Option<f64>> = (0..num_aps)
                    .map(|ap| {
                        if (i + ap) % missing_stride == 0 {
                            None
                        } else {
                            Some(-50.0 - i as f64 - ap as f64 * 2.5)
                        }
                    })
                    .collect();
                records.push(rm_radiomap::RadioMapRecord::new(
                    Fingerprint::new(values),
                    Some(Point::new(i as f64, 0.5)),
                    i as f64 * 2.0,
                    0,
                ));
            }
            let map = RadioMap::new(records, num_aps);
            let mut mask = MaskMatrix::all_observed(num_records, num_aps);
            for i in 0..num_records {
                for ap in 0..num_aps {
                    if (i + ap) % missing_stride == 0 {
                        mask.set(i, ap, EntryKind::Mar);
                    }
                }
            }
            let config = BritsConfig {
                hidden_size: 8,
                epochs,
                sequence_length: 4,
                seed,
                batch_size: 1,
                ..quick_config()
            };
            let batched = Brits::new(config.clone()).impute(&map, &mask);
            for (record, ap, value) in serial_reference_values(&config, &map, &mask) {
                proptest::prop_assert_eq!(batched.rssi(record, ap).to_bits(), value.to_bits());
            }
        }
    }

    /// A fixed `batch_size > 1` yields a bitwise-identical model at any
    /// thread count: batch boundaries and reduction order are fixed by the
    /// batch size alone, and `par_map` hands back gradients in
    /// sequence-index order no matter which worker produced them.
    #[test]
    fn batched_training_is_bit_identical_across_thread_counts() {
        let (map, mask) = smooth_map();
        let run = |threads: usize| {
            Brits::new(BritsConfig {
                epochs: 8,
                batch_size: 3,
                threads,
                ..quick_config()
            })
            .impute(&map, &mask)
        };
        let serial = run(1);
        for threads in [2, 4] {
            let parallel = run(threads);
            for (a, b) in serial
                .fingerprints
                .iter()
                .flatten()
                .zip(parallel.fingerprints.iter().flatten())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "batched BRITS differs at {threads} threads"
                );
            }
        }
    }
}
