//! SSGAN — semi-supervised GAN-style imputation for multivariate time series
//! (Miao et al.), adapted to radio maps.
//!
//! The generator is a recurrent imputer (the same architecture as one BRITS
//! direction); a discriminator MLP tries to tell observed entries from imputed
//! ones given the complemented vector. The generator is trained with a
//! reconstruction loss plus a least-squares adversarial term that pushes the
//! discriminator towards believing imputed entries are observed. Missing
//! reference points fall back to linear interpolation, as in BRITS.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_nn::{loss, Activation, Adam, GradientBatch, Mlp, MlpWeights, Optimizer};
use rm_radiomap::{EntryKind, MaskMatrix, RadioMap};
use rm_tensor::{Matrix, NamedTensor, Precision, Scalar, SnapshotDtype, Var, Workspace};

use crate::brits::{
    default_batch_size, default_epochs, export_recurrent, import_recurrent, Brits,
    RecurrentImputer, RecurrentImputerWeights, RecurrentImputerWeightsBf16,
};
use crate::sequence::{build_sequences, Normalization, PathSequence};
use crate::{snapshot, ImputedRadioMap, Imputer};

/// Configuration for [`Ssgan`].
#[derive(Debug, Clone)]
pub struct SsganConfig {
    /// Hidden state size of the generator's recurrent cell.
    pub hidden_size: usize,
    /// Hidden layer size of the discriminator MLP.
    pub discriminator_hidden: usize,
    /// Number of training epochs.
    pub epochs: usize,
    /// Adam learning rate (shared by generator and discriminator).
    pub learning_rate: f64,
    /// Sequence length `T`.
    pub sequence_length: usize,
    /// Weight of the adversarial term in the generator loss.
    pub adversarial_weight: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the per-sequence fan-outs (`0` = auto): the final
    /// inference pass and — when [`Self::batch_size`] is above 1 — the
    /// per-sequence passes inside each training batch. Results are
    /// bit-identical at any thread count.
    pub threads: usize,
    /// Mini-batch size of the adversarial training loop (see
    /// [`crate::BritsConfig::batch_size`] for the determinism contract).
    /// Both phases of a batch — discriminator, then generator — consume the
    /// same fixed-boundary chunk of sequences, each against the weights its
    /// phase started from, so `batch_size = 1` (the default) reproduces the
    /// classic alternating per-sequence trajectory bitwise.
    pub batch_size: usize,
    /// Precision of the inference pass (training always runs at `f64`; see
    /// [`crate::BritsConfig::precision`] for the contract).
    pub precision: Precision,
    /// Resident storage format of the trained generator snapshot during
    /// inference (see [`crate::BritsConfig::snapshot_dtype`] for the
    /// contract; only meaningful with [`Precision::F32`]).
    pub snapshot_dtype: SnapshotDtype,
}

impl Default for SsganConfig {
    fn default() -> Self {
        Self {
            hidden_size: 32,
            discriminator_hidden: 32,
            epochs: default_epochs(),
            learning_rate: 0.01,
            sequence_length: 5,
            adversarial_weight: 0.3,
            seed: 41,
            threads: 0,
            batch_size: default_batch_size(),
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
        }
    }
}

/// Differentiates the discriminator loss for one sequence — predict the
/// observation mask from the (detached) complemented vectors — and returns
/// the discriminator's per-parameter gradients. `complements` are the
/// generator outputs as plain values: the graph forward's `.value()` on the
/// live path, or the bit-identical matrix-kernel forward of
/// [`RecurrentImputerWeights::run`] on the batched path. The discriminator's
/// gradient buffers must be zero on entry.
fn disc_gradients(
    discriminator: &Mlp,
    seq: &PathSequence,
    complements: &[Matrix<f64>],
) -> Vec<Matrix<f64>> {
    let mut disc_loss = Var::scalar(0.0);
    for t in 0..seq.len() {
        let m = Matrix::column(&seq.fingerprint_masks[t]);
        // Detach the generator output by rebuilding it as a constant.
        let detached = Var::constant(complements[t].clone());
        let predicted = discriminator.forward(&detached);
        disc_loss = disc_loss.add(&loss::mse(&predicted, &m));
    }
    let scaled = disc_loss.scale(1.0 / seq.len() as f64);
    scaled.backward();
    let grads = discriminator
        .parameters()
        .iter()
        .map(|p| p.grad())
        .collect();
    // Return the step's graph to the per-worker node arena (the
    // discriminator's parameter leaves are skipped by the recycler).
    Var::recycle_all([disc_loss, scaled]);
    grads
}

/// Differentiates the generator loss for one sequence — masked
/// reconstruction plus the least-squares adversarial term — and returns the
/// generator's per-parameter gradients. The generator's gradient buffers
/// must be zero on entry (the discriminator's need not be: its parameters
/// receive gradient here too, but only the generator slice is extracted,
/// mirroring the classic loop where `gen_opt.step()` ignored them).
fn gen_gradients(
    generator: &RecurrentImputer,
    discriminator: &Mlp,
    seq: &PathSequence,
    num_aps: usize,
    adversarial_weight: f64,
) -> Vec<Matrix<f64>> {
    let pass = generator.run(seq);
    let mut gen_loss = Var::scalar(0.0);
    for t in 0..seq.len() {
        let target = Matrix::column(&seq.fingerprints[t]);
        let m = Matrix::column(&seq.fingerprint_masks[t]);
        gen_loss = gen_loss.add(&loss::masked_mse(&pass.estimates[t], &target, &m));
        // Adversarial: imputed entries should look observed (1) to the
        // discriminator.
        let inverse_mask = m.map(|v| 1.0 - v);
        let predicted = discriminator.forward(&pass.complements[t]);
        let ones = Matrix::ones(num_aps, 1);
        let adv = loss::masked_mse(&predicted, &ones, &inverse_mask).scale(adversarial_weight);
        gen_loss = gen_loss.add(&adv);
    }
    let scaled = gen_loss.scale(1.0 / seq.len() as f64);
    scaled.backward();
    let grads = generator.parameters().iter().map(|p| p.grad()).collect();
    // Return the step's graph — the generator pass, the loss chain and every
    // intermediate — to the per-worker node arena; the generator and
    // discriminator parameter leaves are skipped by the recycler.
    Var::recycle_all(
        pass.estimates
            .into_iter()
            .chain(pass.complements)
            .chain([gen_loss, scaled]),
    );
    grads
}

/// The SSGAN imputer.
#[derive(Default)]
pub struct Ssgan {
    /// Training configuration.
    pub config: SsganConfig,
}

impl Ssgan {
    /// Creates an SSGAN imputer with the given configuration.
    pub fn new(config: SsganConfig) -> Self {
        Self { config }
    }

    /// Deterministic mini-batch adversarial training for `epochs` epochs:
    /// each fixed-boundary chunk of sequences runs two phases —
    /// discriminator, then generator against the just-updated discriminator
    /// — with the per-sequence gradients of a phase computed against that
    /// phase's starting weights, fanned out over the pool, and summed in
    /// sequence-index order. Single-sequence chunks (the `batch_size = 1`
    /// default) differentiate the live graphs directly, reproducing the
    /// classic alternating loop bitwise; larger chunks ship detached
    /// replicas (rebuilt from `Send + Sync` snapshots) to the workers, so
    /// only plain gradient matrices cross threads. Shared by cold training
    /// and warm fine-tuning, which differ only in the starting weights.
    fn train_adversarial(
        &self,
        generator: &RecurrentImputer,
        discriminator: &Mlp,
        sequences: &[PathSequence],
        num_aps: usize,
        epochs: usize,
    ) {
        let mut gen_opt =
            Adam::new(generator.parameters(), self.config.learning_rate).with_clip(5.0);
        let mut disc_opt =
            Adam::new(discriminator.parameters(), self.config.learning_rate).with_clip(5.0);
        let batch_size = self.config.batch_size.max(1);
        let threads = self.config.threads;
        let adversarial_weight = self.config.adversarial_weight;
        let indices: Vec<usize> = (0..sequences.len()).collect();
        for _ in 0..epochs {
            for chunk in indices.chunks(batch_size) {
                // ---- Discriminator phase: predict the observation mask. ----
                let disc_grads: Vec<Vec<Matrix<f64>>> = if let [i] = *chunk {
                    for p in disc_opt.parameters() {
                        p.zero_grad();
                    }
                    let pass = generator.run(&sequences[i]);
                    let complements: Vec<Matrix<f64>> =
                        pass.complements.iter().map(Var::value).collect();
                    // The pass was only sampled (its values are detached
                    // above); recycle its graph before differentiating.
                    Var::recycle_all(pass.estimates.into_iter().chain(pass.complements));
                    vec![disc_gradients(discriminator, &sequences[i], &complements)]
                } else {
                    let gen_weights = generator.snapshot();
                    let disc_weights = discriminator.snapshot();
                    rm_runtime::par_map(threads, chunk, |_, &i| {
                        // The generator is only sampled here (its output is
                        // detached), so the graph-free matrix forward — bit-
                        // identical to the graph forward — serves directly.
                        let mut ws = Workspace::new();
                        let complements = gen_weights.run(&sequences[i], &mut ws);
                        disc_gradients(&disc_weights.to_mlp(), &sequences[i], &complements)
                    })
                };
                let mut batch = GradientBatch::zeros_like(disc_opt.parameters());
                for g in &disc_grads {
                    batch.accumulate(g);
                }
                disc_opt.apply_batch(&batch);

                // ---- Generator phase: reconstruction + fooling the updated
                // discriminator. ----
                let gen_grads: Vec<Vec<Matrix<f64>>> = if let [i] = *chunk {
                    for p in gen_opt.parameters() {
                        p.zero_grad();
                    }
                    vec![gen_gradients(
                        generator,
                        discriminator,
                        &sequences[i],
                        num_aps,
                        adversarial_weight,
                    )]
                } else {
                    let gen_weights = generator.snapshot();
                    let disc_weights = discriminator.snapshot();
                    rm_runtime::par_map(threads, chunk, |_, &i| {
                        gen_gradients(
                            &gen_weights.to_model(),
                            &disc_weights.to_mlp(),
                            &sequences[i],
                            num_aps,
                            adversarial_weight,
                        )
                    })
                };
                let mut batch = GradientBatch::zeros_like(gen_opt.parameters());
                for g in &gen_grads {
                    batch.accumulate(g);
                }
                gen_opt.apply_batch(&batch);
            }
        }
    }

    /// Produces imputations from the trained generator — snapshot weights
    /// rounded once to f32 when the config asks for single-precision
    /// inference, per-sequence inference fanned out over the pool (each task
    /// writes values for its own disjoint records) — plus the optional
    /// tensor export: the generator under `ssgan.generator.*` and the
    /// discriminator under `ssgan.discriminator.N.*` (the discriminator
    /// does not impute, but warm fine-tuning resumes the adversarial game,
    /// so both players persist).
    fn infer_and_export(
        &self,
        generator_weights: &RecurrentImputerWeights,
        discriminator_weights: &MlpWeights<f64>,
        sequences: &[PathSequence],
        map: &RadioMap,
        mask: &MaskMatrix,
        norm: &Normalization,
        export_snapshot: bool,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        let num_aps = map.num_aps();
        let ImputedRadioMap {
            mut fingerprints,
            locations,
        } = Brits::passthrough(map);
        let tensors = if export_snapshot {
            let mut tensors = Vec::with_capacity(16);
            export_recurrent(
                "ssgan.generator",
                generator_weights,
                self.config.precision,
                self.config.snapshot_dtype,
                &mut tensors,
            );
            snapshot::export_mlp(
                "ssgan.discriminator",
                discriminator_weights,
                self.config.precision,
                self.config.snapshot_dtype,
                &mut tensors,
            );
            tensors
        } else {
            Vec::new()
        };
        let imputations = match (self.config.precision, self.config.snapshot_dtype) {
            (Precision::F64, _) => infer_mar_values(
                generator_weights,
                sequences,
                mask,
                norm,
                num_aps,
                self.config.threads,
            ),
            (Precision::F32, SnapshotDtype::Native) => infer_mar_values(
                &generator_weights.cast::<f32>(),
                sequences,
                mask,
                norm,
                num_aps,
                self.config.threads,
            ),
            (Precision::F32, SnapshotDtype::Bf16) => infer_mar_values_bf16(
                &RecurrentImputerWeightsBf16::from_weights(&generator_weights.cast::<f32>()),
                sequences,
                mask,
                norm,
                num_aps,
                self.config.threads,
            ),
        };
        for values in imputations {
            for (record, ap, value) in values {
                fingerprints[record][ap] = value;
            }
        }

        (
            ImputedRadioMap {
                fingerprints,
                locations,
            },
            tensors,
        )
    }

    /// The shared train-then-infer body behind the [`Imputer`] entry points.
    fn impute_inner(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        export_snapshot: bool,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        let num_aps = map.num_aps();
        let norm = Normalization::from_map(map);
        let sequences = build_sequences(map, mask, self.config.sequence_length, &norm);
        if sequences.is_empty() || num_aps == 0 {
            return (Brits::passthrough(map), Vec::new());
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let generator = RecurrentImputer::new(num_aps, self.config.hidden_size, &mut rng);
        let discriminator = Mlp::new(
            &[num_aps, self.config.discriminator_hidden, num_aps],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        self.train_adversarial(
            &generator,
            &discriminator,
            &sequences,
            num_aps,
            self.config.epochs,
        );
        self.infer_and_export(
            &generator.snapshot(),
            &discriminator.snapshot(),
            &sequences,
            map,
            mask,
            &norm,
            export_snapshot,
        )
    }

    /// Rebuilds both players from a warm snapshot, validating every shape
    /// against a `num_aps`-AP map; `None` falls back to cold training.
    fn import_players(
        &self,
        warm: &[NamedTensor],
        num_aps: usize,
    ) -> Option<(RecurrentImputerWeights, MlpWeights<f64>)> {
        let generator = import_recurrent("ssgan.generator", warm, num_aps)?;
        let discriminator = snapshot::import_mlp(
            warm,
            "ssgan.discriminator",
            Activation::Relu,
            Activation::Sigmoid,
        )?;
        let layers = discriminator.layers();
        if layers.first()?.weight().cols() != num_aps || layers.last()?.weight().rows() != num_aps {
            return None;
        }
        Some((generator, discriminator))
    }

    /// The warm-start body: `Some` when the snapshot round-trips into this
    /// map's architecture, `None` to fall back to the cold path. Replay and
    /// fine-tune semantics match BRITS ([`Brits::impute_warm_inner`]): with
    /// `fine_tune_epochs = 0` the imported generator runs inference as-is —
    /// bit-identical to the exporting run on an unchanged map — and with
    /// `fine_tune_epochs > 0` both players resume the adversarial game from
    /// their imported weights under a fresh optimizer pair.
    fn impute_warm_inner(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        warm: &[NamedTensor],
        fine_tune_epochs: usize,
    ) -> Option<(ImputedRadioMap, Vec<NamedTensor>)> {
        let num_aps = map.num_aps();
        if num_aps == 0 {
            return None;
        }
        let (generator_weights, discriminator_weights) = self.import_players(warm, num_aps)?;

        let norm = Normalization::from_map(map);
        let sequences = build_sequences(map, mask, self.config.sequence_length, &norm);
        if sequences.is_empty() {
            return None;
        }

        let (generator_weights, discriminator_weights) = if fine_tune_epochs == 0 {
            (generator_weights, discriminator_weights)
        } else {
            let generator = generator_weights.to_model();
            let discriminator = discriminator_weights.to_mlp();
            self.train_adversarial(
                &generator,
                &discriminator,
                &sequences,
                num_aps,
                fine_tune_epochs,
            );
            (generator.snapshot(), discriminator.snapshot())
        };
        Some(self.infer_and_export(
            &generator_weights,
            &discriminator_weights,
            &sequences,
            map,
            mask,
            &norm,
            true,
        ))
    }
}

impl Imputer for Ssgan {
    fn impute(&self, map: &RadioMap, mask: &MaskMatrix) -> ImputedRadioMap {
        self.impute_inner(map, mask, false).0
    }

    fn impute_with_snapshot(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        self.impute_inner(map, mask, true)
    }

    fn impute_warm(
        &self,
        map: &RadioMap,
        mask: &MaskMatrix,
        warm: &[NamedTensor],
        fine_tune_epochs: usize,
    ) -> (ImputedRadioMap, Vec<NamedTensor>) {
        match self.impute_warm_inner(map, mask, warm, fine_tune_epochs) {
            Some(out) => out,
            None => self.impute_with_snapshot(map, mask),
        }
    }

    fn name(&self) -> &'static str {
        "SSGAN"
    }
}

/// The single-direction inference fan-out, generic over the kernel
/// precision: every sequence runs through the shared generator snapshot on
/// the pool and its MAR complements are denormalised after widening back to
/// `f64`. Order-preserving and bit-identical at any thread count.
fn infer_mar_values<T: Scalar>(
    generator: &RecurrentImputerWeights<T>,
    sequences: &[PathSequence],
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    threads: usize,
) -> Vec<Vec<(usize, usize, f64)>> {
    rm_runtime::par_map(threads, sequences, |_, seq| {
        // Per-task scratch backed by the worker's thread-local buffer pool.
        let mut ws = Workspace::new();
        mar_values_for_sequence(generator, seq, mask, norm, num_aps, &mut ws)
    })
}

/// One sequence of the inference fan-out, shared by the native-dtype and
/// bf16 variants.
fn mar_values_for_sequence<T: Scalar>(
    generator: &RecurrentImputerWeights<T>,
    seq: &PathSequence,
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    ws: &mut Workspace<T>,
) -> Vec<(usize, usize, f64)> {
    let complements = generator.run(seq, ws);
    let mut values: Vec<(usize, usize, f64)> = Vec::new();
    for (t, &record) in seq.record_indices.iter().enumerate() {
        for ap in 0..num_aps {
            if mask.get(record, ap) == EntryKind::Mar {
                let v = complements[t].get(ap, 0).to_f64();
                values.push((record, ap, norm.denormalize_rssi(v)));
            }
        }
    }
    values
}

/// The bf16-resident variant of [`infer_mar_values`]: each task decodes the
/// shared bfloat16 generator snapshot into its own pooled f32 scratch, runs
/// the same f32 inference, and recycles the decoded matrices. Decoding is
/// pure and per-task, so the fan-out stays bit-identical at any thread
/// count.
fn infer_mar_values_bf16(
    generator: &RecurrentImputerWeightsBf16,
    sequences: &[PathSequence],
    mask: &MaskMatrix,
    norm: &Normalization,
    num_aps: usize,
    threads: usize,
) -> Vec<Vec<(usize, usize, f64)>> {
    rm_runtime::par_map(threads, sequences, |_, seq| {
        let mut ws = Workspace::new();
        let decoded = generator.decode_ws(&mut ws);
        let values = mar_values_for_sequence(&decoded, seq, mask, norm, num_aps, &mut ws);
        decoded.recycle(&mut ws);
        values
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brits::tests::smooth_map;

    fn quick_config() -> SsganConfig {
        SsganConfig {
            hidden_size: 16,
            discriminator_hidden: 16,
            epochs: 15,
            learning_rate: 0.02,
            sequence_length: 5,
            adversarial_weight: 0.3,
            seed: 5,
            threads: 0,
            batch_size: 1,
            precision: Precision::F64,
            snapshot_dtype: SnapshotDtype::Native,
        }
    }

    #[test]
    fn ssgan_imputes_a_plausible_mar_value() {
        let (map, mask) = smooth_map();
        let out = Ssgan::new(quick_config()).impute(&map, &mask);
        let imputed = out.rssi(5, 0);
        assert!(
            (-90.0..=-40.0).contains(&imputed),
            "imputed value {imputed} is implausible"
        );
        assert_eq!(out.rssi(0, 0), -60.0);
        assert_eq!(Ssgan::default().name(), "SSGAN");
    }

    #[test]
    fn ssgan_f32_inference_tracks_the_f64_path() {
        let (map, mask) = smooth_map();
        let f64_out = Ssgan::new(quick_config()).impute(&map, &mask);
        let f32_out = Ssgan::new(SsganConfig {
            precision: Precision::F32,
            ..quick_config()
        })
        .impute(&map, &mask);
        let a = f64_out.rssi(5, 0);
        let b = f32_out.rssi(5, 0);
        assert!(
            (a - b).abs() < 0.1,
            "f32 imputation {b} drifted from f64 imputation {a}"
        );
        assert_eq!(f32_out.rssi(0, 0).to_bits(), f64_out.rssi(0, 0).to_bits());
    }

    /// The bf16-resident generator snapshot tracks the native-f32 path to
    /// within the bfloat16 truncation epsilon.
    #[test]
    fn ssgan_bf16_snapshots_track_the_f32_path() {
        let (map, mask) = smooth_map();
        let f32_out = Ssgan::new(SsganConfig {
            precision: Precision::F32,
            ..quick_config()
        })
        .impute(&map, &mask);
        let bf16_out = Ssgan::new(SsganConfig {
            precision: Precision::F32,
            snapshot_dtype: SnapshotDtype::Bf16,
            ..quick_config()
        })
        .impute(&map, &mask);
        let a = f32_out.rssi(5, 0);
        let b = bf16_out.rssi(5, 0);
        assert!(
            (a - b).abs() < 1.0,
            "bf16 imputation {b} drifted from f32 imputation {a}"
        );
        assert_eq!(bf16_out.rssi(0, 0).to_bits(), f32_out.rssi(0, 0).to_bits());
    }

    /// A fixed `batch_size > 1` yields a bitwise-identical SSGAN model at
    /// any thread count (both adversarial phases batch deterministically).
    #[test]
    fn batched_adversarial_training_is_bit_identical_across_thread_counts() {
        let (map, mask) = smooth_map();
        let run = |threads: usize| {
            Ssgan::new(SsganConfig {
                epochs: 5,
                batch_size: 2,
                threads,
                ..quick_config()
            })
            .impute(&map, &mask)
        };
        let serial = run(1);
        for threads in [2, 4] {
            let parallel = run(threads);
            for (a, b) in serial
                .fingerprints
                .iter()
                .flatten()
                .zip(parallel.fingerprints.iter().flatten())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "batched SSGAN differs at {threads} threads"
                );
            }
        }
    }

    /// `batch_size = 1` reproduces the classic alternating per-sequence
    /// trajectory bitwise: the reference below is the literal pre-batching
    /// loop (disc `zero_grad → backward → step`, then gen, per sequence).
    #[test]
    fn batch_size_one_reproduces_the_alternating_trajectory() {
        let (map, mask) = smooth_map();
        let config = quick_config();
        let batched = Ssgan::new(config.clone()).impute(&map, &mask);

        let norm = Normalization::from_map(&map);
        let sequences = build_sequences(&map, &mask, config.sequence_length, &norm);
        let num_aps = 2;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let generator = RecurrentImputer::new(num_aps, config.hidden_size, &mut rng);
        let discriminator = Mlp::new(
            &[num_aps, config.discriminator_hidden, num_aps],
            Activation::Relu,
            Activation::Sigmoid,
            &mut rng,
        );
        let mut gen_opt = Adam::new(generator.parameters(), config.learning_rate).with_clip(5.0);
        let mut disc_opt =
            Adam::new(discriminator.parameters(), config.learning_rate).with_clip(5.0);
        for _ in 0..config.epochs {
            for seq in &sequences {
                disc_opt.zero_grad();
                let pass = generator.run(seq);
                let mut disc_loss = Var::scalar(0.0);
                for t in 0..seq.len() {
                    let m = Matrix::column(&seq.fingerprint_masks[t]);
                    let detached = Var::constant(pass.complements[t].value());
                    let predicted = discriminator.forward(&detached);
                    disc_loss = disc_loss.add(&loss::mse(&predicted, &m));
                }
                disc_loss.scale(1.0 / seq.len() as f64).backward();
                disc_opt.step();

                gen_opt.zero_grad();
                let pass = generator.run(seq);
                let mut gen_loss = Var::scalar(0.0);
                for t in 0..seq.len() {
                    let target = Matrix::column(&seq.fingerprints[t]);
                    let m = Matrix::column(&seq.fingerprint_masks[t]);
                    gen_loss = gen_loss.add(&loss::masked_mse(&pass.estimates[t], &target, &m));
                    let inverse_mask = m.map(|v| 1.0 - v);
                    let predicted = discriminator.forward(&pass.complements[t]);
                    let ones = Matrix::ones(num_aps, 1);
                    let adv = loss::masked_mse(&predicted, &ones, &inverse_mask)
                        .scale(config.adversarial_weight);
                    gen_loss = gen_loss.add(&adv);
                }
                gen_loss.scale(1.0 / seq.len() as f64).backward();
                gen_opt.step();
            }
        }
        let values = infer_mar_values(&generator.snapshot(), &sequences, &mask, &norm, num_aps, 1);
        for (record, ap, value) in values.into_iter().flatten() {
            assert_eq!(
                batched.rssi(record, ap).to_bits(),
                value.to_bits(),
                "batch_size = 1 diverged from the alternating reference at ({record}, {ap})"
            );
        }
    }

    /// SSGAN now round-trips trained weights through named tensors like
    /// BRITS: both players export (generator 12 tensors, discriminator 4),
    /// and a `fine_tune_epochs = 0` warm replay on the unchanged map
    /// reproduces the exporting run bitwise at every dtype.
    #[test]
    fn warm_replay_reproduces_the_exporting_run_bitwise() {
        let (map, mask) = smooth_map();
        for (precision, snapshot_dtype) in [
            (Precision::F64, SnapshotDtype::Native),
            (Precision::F32, SnapshotDtype::Native),
            (Precision::F32, SnapshotDtype::Bf16),
        ] {
            let ssgan = Ssgan::new(SsganConfig {
                epochs: 3,
                precision,
                snapshot_dtype,
                ..quick_config()
            });
            let (cold, tensors) = ssgan.impute_with_snapshot(&map, &mask);
            assert_eq!(tensors.len(), 16);
            assert!(tensors
                .iter()
                .any(|t| t.name == "ssgan.generator.estimate.weight"));
            assert!(tensors
                .iter()
                .any(|t| t.name == "ssgan.discriminator.1.bias"));
            let (warm, re_exported) = ssgan.impute_warm(&map, &mask, &tensors, 0);
            for (a, b) in cold
                .fingerprints
                .iter()
                .flatten()
                .zip(warm.fingerprints.iter().flatten())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "warm replay drifted from cold run"
                );
            }
            for (a, b) in tensors.iter().zip(re_exported.iter()) {
                assert!(a.bits_eq(b), "re-exported tensor {} drifted", a.name);
            }
        }
    }

    /// Fine-tuning resumes the adversarial game from the imported weights:
    /// fresh tensors come back and the weights actually move.
    #[test]
    fn warm_fine_tune_updates_both_players() {
        let (map, mask) = smooth_map();
        let ssgan = Ssgan::new(SsganConfig {
            epochs: 3,
            ..quick_config()
        });
        let (_, tensors) = ssgan.impute_with_snapshot(&map, &mask);
        let (out, tuned) = ssgan.impute_warm(&map, &mask, &tensors, 2);
        assert_eq!(tuned.len(), 16);
        // Two extra adversarial epochs from a 3-epoch checkpoint need not
        // land in the converged band yet — just keep the value sane.
        assert!(out.rssi(5, 0).is_finite());
        let moved = |prefix: &str| {
            tensors
                .iter()
                .zip(tuned.iter())
                .filter(|(a, _)| a.name.starts_with(prefix))
                .any(|(a, b)| !a.bits_eq(b))
        };
        assert!(moved("ssgan.generator."), "generator never moved");
        assert!(moved("ssgan.discriminator."), "discriminator never moved");
    }

    /// Empty or foreign snapshots fall back to the cold path bitwise.
    #[test]
    fn warm_with_unusable_snapshot_falls_back_to_cold_training() {
        let (map, mask) = smooth_map();
        let ssgan = Ssgan::new(quick_config());
        let (cold, _) = ssgan.impute_with_snapshot(&map, &mask);
        let (out, tensors) = ssgan.impute_warm(&map, &mask, &[], 0);
        assert_eq!(tensors.len(), 16);
        for (a, b) in cold
            .fingerprints
            .iter()
            .flatten()
            .zip(out.fingerprints.iter().flatten())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn ssgan_interpolates_missing_rps() {
        let (mut map, mask) = smooth_map();
        map.records_mut()[6].rp = None;
        let out = Ssgan::new(quick_config()).impute(&map, &mask);
        let p = out.locations[6].unwrap();
        assert!((p.x - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ssgan_handles_empty_map() {
        let out = Ssgan::new(quick_config()).impute(
            &rm_radiomap::RadioMap::empty(2),
            &MaskMatrix::all_observed(0, 2),
        );
        assert!(out.is_empty());
    }
}
