//! MICE — Multiple Imputation by Chained Equations.
//!
//! The radio map (RSSI columns plus the two RP coordinate columns) is treated
//! as a tabular dataset. Missing entries are initialised with column means and
//! then refined over several cycles: each column with missing values is
//! regressed (ridge regression) on the most-correlated other columns using the
//! rows where it is observed, and its missing entries are replaced by the
//! regression predictions.

use std::cmp::Ordering;

use rm_geometry::Point;
use rm_radiomap::{MaskMatrix, RadioMap, MNAR_FILL_VALUE};

use crate::{fill_mnars, gates, ImputedRadioMap, Imputer};

/// Configuration for [`Mice`].
#[derive(Debug, Clone)]
pub struct MiceConfig {
    /// Number of chained-equation cycles.
    pub cycles: usize,
    /// Number of predictor columns (most correlated) per regressed column.
    /// The full paper-faithful variant uses all columns; limiting the
    /// predictors keeps the normal equations small on wide radio maps.
    pub predictors_per_column: usize,
    /// Ridge regularisation strength.
    pub ridge_lambda: f64,
    /// Worker threads for the per-column fan-outs (`0` = auto, see
    /// [`rm_runtime::resolve_threads`]). The chained-equation *column order*
    /// stays strictly sequential — that is the algorithm — but the
    /// per-column work (correlation scan over all candidate predictors,
    /// predictions for the missing rows) is embarrassingly parallel and
    /// produces identical results at any thread count.
    pub threads: usize,
}

impl Default for MiceConfig {
    fn default() -> Self {
        Self {
            cycles: 3,
            predictors_per_column: 8,
            ridge_lambda: 1.0,
            threads: 0,
        }
    }
}

/// The MICE imputer.
#[derive(Debug, Clone, Default)]
pub struct Mice {
    /// Algorithm configuration.
    pub config: MiceConfig,
}

impl Mice {
    /// Creates a MICE imputer with the given configuration.
    pub fn new(config: MiceConfig) -> Self {
        Self { config }
    }
}

impl Imputer for Mice {
    fn impute(&self, map: &RadioMap, mask: &MaskMatrix) -> ImputedRadioMap {
        let n = map.len();
        let d = map.num_aps();
        if n == 0 {
            return ImputedRadioMap {
                fingerprints: Vec::new(),
                locations: Vec::new(),
            };
        }
        // Columns 0..d are RSSIs (MNARs already filled); columns d, d+1 are RP x/y.
        let rssi = fill_mnars(map, mask);
        let num_cols = d + 2;
        let mut observed = vec![vec![false; num_cols]; n];
        let mut data = vec![vec![0.0f64; num_cols]; n];
        for i in 0..n {
            for ap in 0..d {
                if let Some(v) = rssi[i][ap] {
                    data[i][ap] = v;
                    observed[i][ap] = true;
                }
            }
            if let Some(p) = map.record(i).rp {
                data[i][d] = p.x;
                data[i][d + 1] = p.y;
                observed[i][d] = true;
                observed[i][d + 1] = true;
            }
        }

        // Initialise missing entries with column means.
        let mut column_means = vec![0.0f64; num_cols];
        for c in 0..num_cols {
            let (sum, count) = (0..n).fold((0.0, 0usize), |(s, k), i| {
                if observed[i][c] {
                    (s + data[i][c], k + 1)
                } else {
                    (s, k)
                }
            });
            column_means[c] = if count > 0 {
                sum / count as f64
            } else if c < d {
                MNAR_FILL_VALUE
            } else {
                0.0
            };
            for i in 0..n {
                if !observed[i][c] {
                    data[i][c] = column_means[c];
                }
            }
        }

        // Chained-equation cycles.
        for _ in 0..self.config.cycles {
            for target in 0..num_cols {
                let missing_rows: Vec<usize> = (0..n).filter(|&i| !observed[i][target]).collect();
                if missing_rows.is_empty() {
                    continue;
                }
                let observed_rows: Vec<usize> = (0..n).filter(|&i| observed[i][target]).collect();
                if observed_rows.len() < 3 {
                    continue;
                }
                let predictors = select_predictors(
                    &data,
                    &observed_rows,
                    target,
                    num_cols,
                    self.config.predictors_per_column,
                    self.config.threads,
                );
                if predictors.is_empty() {
                    continue;
                }
                if let Some(weights) = ridge_regression(
                    &data,
                    &observed_rows,
                    &predictors,
                    target,
                    self.config.ridge_lambda,
                ) {
                    // Each missing row's prediction reads only frozen data, so
                    // the fan-out is order-preserving and deterministic; the
                    // writes happen serially afterwards. The fan-out is gated
                    // on a row count that amortises the thread-spawn cost
                    // (see [`crate::gates`]).
                    let threads = if missing_rows.len() < gates::mice_prediction_min_rows() {
                        1
                    } else {
                        self.config.threads
                    };
                    let predictions = rm_runtime::par_map(threads, &missing_rows, |_, &row| {
                        let mut prediction = weights[0];
                        for (k, &p) in predictors.iter().enumerate() {
                            prediction += weights[k + 1] * data[row][p];
                        }
                        prediction
                    });
                    for (&row, &prediction) in missing_rows.iter().zip(predictions.iter()) {
                        data[row][target] = prediction;
                    }
                }
            }
        }

        // Assemble the result; clamp RSSIs into the physically valid range.
        let fingerprints: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|c| data[i][c].clamp(MNAR_FILL_VALUE, 0.0))
                    .collect()
            })
            .collect();
        let locations: Vec<Option<Point>> = (0..n)
            .map(|i| Some(Point::new(data[i][d], data[i][d + 1])))
            .collect();
        ImputedRadioMap {
            fingerprints,
            locations,
        }
    }

    fn name(&self) -> &'static str {
        "MICE"
    }
}

/// Picks the `limit` columns most correlated (in absolute value) with `target`
/// over the observed rows. The correlation scan — the hot loop of a MICE
/// cycle, `O(num_cols · rows)` per target column — fans out over the
/// candidate columns; the ranking itself stays serial and stable.
fn select_predictors(
    data: &[Vec<f64>],
    rows: &[usize],
    target: usize,
    num_cols: usize,
    limit: usize,
    threads: usize,
) -> Vec<usize> {
    let candidates: Vec<usize> = (0..num_cols).filter(|&c| c != target).collect();
    // Each correlation is an O(rows) scan; fan out only when the total work
    // amortises the thread-spawn cost (see [`crate::gates`] — the gate is
    // deliberately conservative until a persistent pool lands).
    let threads = if candidates.len() * rows.len() < gates::mice_predictor_scan_min_cells() {
        1
    } else {
        threads
    };
    let mut correlations: Vec<(f64, usize)> = rm_runtime::par_map(threads, &candidates, |_, &c| {
        (correlation(data, rows, c, target).abs(), c)
    })
    .into_iter()
    .filter(|(r, _)| r.is_finite() && *r > 1e-6)
    .collect();
    correlations.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal));
    correlations
        .into_iter()
        .take(limit)
        .map(|(_, c)| c)
        .collect()
}

fn correlation(data: &[Vec<f64>], rows: &[usize], a: usize, b: usize) -> f64 {
    let n = rows.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean_a = rows.iter().map(|&i| data[i][a]).sum::<f64>() / n;
    let mean_b = rows.iter().map(|&i| data[i][b]).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for &i in rows {
        let da = data[i][a] - mean_a;
        let db = data[i][b] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a < 1e-12 || var_b < 1e-12 {
        0.0
    } else {
        cov / (var_a.sqrt() * var_b.sqrt())
    }
}

/// Solves a ridge regression of `target` on `predictors` (plus intercept) over
/// `rows` by Gaussian elimination on the normal equations. Returns
/// `[intercept, w_1, …, w_k]`.
fn ridge_regression(
    data: &[Vec<f64>],
    rows: &[usize],
    predictors: &[usize],
    target: usize,
    lambda: f64,
) -> Option<Vec<f64>> {
    let k = predictors.len() + 1; // intercept + predictors
    let mut xtx = vec![vec![0.0f64; k]; k];
    let mut xty = vec![0.0f64; k];
    for &row in rows {
        let mut x = Vec::with_capacity(k);
        x.push(1.0);
        for &p in predictors {
            x.push(data[row][p]);
        }
        let y = data[row][target];
        for i in 0..k {
            xty[i] += x[i] * y;
            for j in 0..k {
                xtx[i][j] += x[i] * x[j];
            }
        }
    }
    for (i, row) in xtx.iter_mut().enumerate().skip(1) {
        row[i] += lambda;
    }
    solve_linear_system(xtx, xty)
}

/// Gaussian elimination with partial pivoting.
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(Ordering::Equal)
        })?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= factor * a[col][c];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for c in (row + 1)..n {
            sum -= a[row][c] * x[c];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_radiomap::{EntryKind, Fingerprint, RadioMapRecord};

    /// Records where AP0 and AP1 are strongly correlated (AP1 = AP0 - 10), and
    /// some AP1 values are MAR-missing.
    fn correlated_map() -> (RadioMap, MaskMatrix) {
        let mut records = Vec::new();
        for i in 0..20 {
            let a = -50.0 - i as f64;
            let b = if i % 4 == 0 { None } else { Some(a - 10.0) };
            records.push(RadioMapRecord::new(
                Fingerprint::new(vec![Some(a), b]),
                Some(Point::new(i as f64, 0.0)),
                i as f64,
                0,
            ));
        }
        let map = RadioMap::new(records, 2);
        let mut mask = MaskMatrix::all_observed(20, 2);
        for i in (0..20).step_by(4) {
            mask.set(i, 1, EntryKind::Mar);
        }
        (map, mask)
    }

    #[test]
    fn mice_exploits_column_correlation() {
        let (map, mask) = correlated_map();
        let out = Mice::default().impute(&map, &mask);
        for i in (0..20).step_by(4) {
            let expected = -50.0 - i as f64 - 10.0;
            let got = out.rssi(i, 1);
            assert!(
                (got - expected).abs() < 3.0,
                "record {i}: imputed {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn mice_preserves_observed_values_and_clamps_range() {
        let (map, mask) = correlated_map();
        let out = Mice::default().impute(&map, &mask);
        assert_eq!(out.rssi(1, 0), -51.0);
        for row in &out.fingerprints {
            for &v in row {
                assert!((MNAR_FILL_VALUE..=0.0).contains(&v));
            }
        }
        assert_eq!(Mice::default().name(), "MICE");
    }

    #[test]
    fn mice_imputes_missing_rp_coordinates() {
        let (mut map, mask) = correlated_map();
        // Remove the RP of record 10; MICE should regress it from the RSSI
        // columns (location x correlates perfectly with AP0 here).
        map.records_mut()[10].rp = None;
        let out = Mice::default().impute(&map, &mask);
        let p = out.locations[10].unwrap();
        assert!((p.x - 10.0).abs() < 2.5, "imputed x = {}", p.x);
    }

    #[test]
    fn mice_on_empty_map() {
        let map = RadioMap::empty(3);
        let mask = MaskMatrix::all_observed(0, 3);
        let out = Mice::default().impute(&map, &mask);
        assert!(out.is_empty());
    }

    #[test]
    fn linear_solver_solves_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        // Singular system returns None.
        let singular = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(solve_linear_system(singular, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn correlation_detects_linear_relation() {
        let data = vec![
            vec![1.0, 2.0, 5.0],
            vec![2.0, 4.0, 1.0],
            vec![3.0, 6.0, 9.0],
            vec![4.0, 8.0, 2.0],
        ];
        let rows: Vec<usize> = (0..4).collect();
        assert!((correlation(&data, &rows, 0, 1) - 1.0).abs() < 1e-9);
        assert!(correlation(&data, &rows, 0, 2).abs() < 0.9);
    }
}
