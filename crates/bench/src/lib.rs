//! Shared infrastructure for the experiment harness.
//!
//! Every table and figure of the paper's evaluation (Section V) has a binary
//! under `src/bin/` that regenerates it on the synthetic venues; this library
//! provides the common machinery: dataset construction, the evaluation
//! protocol with multiple estimators per imputation, and plain-text table
//! rendering.
//!
//! Scaling knobs (environment variables):
//!
//! * `RM_SCALE`  — venue scale factor in `(0, 1]` (default 0.15, `RM_QUICK=1`
//!   drops it to 0.08),
//! * `RM_EPOCHS` — training epochs of the neural imputers (default 30,
//!   `RM_QUICK=1` drops it to 8; floor of 1 — `RM_EPOCHS=0` is promoted
//!   with a warning),
//! * `RM_BATCH` — training mini-batch size of the recurrent imputers
//!   (default 1 — the classic per-sequence SGD trajectory; larger values
//!   let training fan out over the worker pool, bit-identically at any
//!   thread count, but change which model a fixed seed yields),
//! * `RM_SEED`   — base RNG seed (default 2023),
//! * `RM_PRECISION` — inference precision of the neural imputers: `f64`
//!   (default) or `f32` (single-precision SIMD kernels; see
//!   [`radiomap_core::Precision`]),
//! * `RM_SNAPSHOT_DTYPE` — resident storage format of the neural imputers'
//!   trained inference snapshots: `native` (default) or `bf16` (half the
//!   resident bytes, decoded per inference task; only meaningful with
//!   `RM_PRECISION=f32` — see [`radiomap_core::SnapshotDtype`]).

use std::sync::OnceLock;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use radiomap_core::prelude::*;
use radiomap_core::{DifferentiatorKind, ImputerKind, PipelineConfig};
use rm_radiomap::DenseRadioMap;

/// The base seed used by the experiment harness (override with `RM_SEED`).
///
/// Resolved **once per process** and cached, like every other env knob
/// (`RM_THREADS`, `RM_EPOCHS`, `RM_BATCH`, `RM_SCALE`): repeated calls can
/// never disagree, and a mid-run `set_var` can never split an experiment
/// across two seeds.
pub fn experiment_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_SEED
        std::env::var("RM_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2023)
    })
}

/// The inference precision used by the experiment harness: `RM_PRECISION`
/// (`f32`/`f64`, case-insensitive) if set and valid, else the `f64` default.
/// This is how CI runs the whole grid in single-precision mode without a
/// second binary. Resolved once per process and cached, like
/// [`experiment_seed`].
pub fn experiment_precision() -> Precision {
    static PRECISION: OnceLock<Precision> = OnceLock::new();
    *PRECISION.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_PRECISION
        std::env::var("RM_PRECISION")
            .ok()
            .and_then(|v| Precision::parse(&v))
            .unwrap_or(Precision::F64)
    })
}

/// The resident snapshot storage format used by the experiment harness:
/// `RM_SNAPSHOT_DTYPE` (`native`/`bf16`, case-insensitive) if set and valid,
/// else the `native` default. This is how CI runs the whole grid from
/// half-size bf16 snapshots without a second binary. Resolved once per
/// process and cached, like [`experiment_seed`].
pub fn experiment_snapshot_dtype() -> SnapshotDtype {
    static DTYPE: OnceLock<SnapshotDtype> = OnceLock::new();
    *DTYPE.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_SNAPSHOT_DTYPE
        std::env::var("RM_SNAPSHOT_DTYPE")
            .ok()
            .and_then(|v| SnapshotDtype::parse(&v))
            .unwrap_or(SnapshotDtype::Native)
    })
}

/// Whether `run_all_experiments` should print the experiment index and exit
/// (`RM_INDEX_ONLY=1`). Resolved once per process and cached, like
/// [`experiment_seed`] — a binary-startup flag, but routed through the same
/// accessor pattern so no raw env read survives in the harness.
pub fn index_only() -> bool {
    static INDEX_ONLY: OnceLock<bool> = OnceLock::new();
    *INDEX_ONLY.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for RM_INDEX_ONLY
        std::env::var("RM_INDEX_ONLY")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// The training mini-batch size used by the experiment harness: the
/// process-cached `RM_BATCH` resolution of the recurrent imputers
/// (default 1).
pub fn experiment_batch_size() -> usize {
    rm_imputers::brits::default_batch_size()
}

/// Builds the dataset for a venue preset at the harness scale.
pub fn experiment_dataset(preset: VenuePreset) -> Dataset {
    DatasetSpec::new(preset, experiment_seed()).build()
}

/// Builds the dataset with an RP-record probability override (Fig. 16).
pub fn experiment_dataset_with_rp_density(preset: VenuePreset, rp_probability: f64) -> Dataset {
    DatasetSpec::new(preset, experiment_seed())
        .with_rp_record_probability(rp_probability)
        .build()
}

/// The two Wi-Fi venues used by most experiments.
pub fn wifi_presets() -> [VenuePreset; 2] {
    [VenuePreset::KaideLike, VenuePreset::WandaLike]
}

/// The outcome of one pipeline cell: per-estimator APE plus stage timings.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// APE per estimator, in the order requested.
    pub ape_by_estimator: Vec<(EstimatorKind, f64)>,
    /// Differentiation wall-clock seconds.
    pub differentiation_seconds: f64,
    /// Imputation wall-clock seconds.
    pub imputation_seconds: f64,
    /// Fraction of missing RSSIs classified as MAR.
    pub mar_fraction: Option<f64>,
}

impl CellResult {
    /// The APE of a particular estimator (NaN if missing).
    pub fn ape(&self, kind: EstimatorKind) -> f64 {
        self.ape_by_estimator
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    }
}

/// Runs the Section V-A protocol for one (differentiator, imputer) pair and
/// evaluates *all* requested estimators on the same imputed map (Table VI
/// evaluates three estimators per imputer, so imputing once per estimator
/// would triple the cost for no benefit). Internal fan-outs (imputer column
/// loops, positioning queries) run at the default width (`RM_THREADS`, else
/// available parallelism); use [`run_cell_with_threads`] to bound them.
pub fn run_cell(
    dataset: &Dataset,
    differentiator: DifferentiatorKind,
    imputer: ImputerKind,
    estimators: &[EstimatorKind],
    attention: AttentionMode,
    time_lag: TimeLagMode,
    removal_ratio_alpha: f64,
    eta: f64,
) -> CellResult {
    run_cell_with_threads(
        dataset,
        differentiator,
        imputer,
        estimators,
        attention,
        time_lag,
        removal_ratio_alpha,
        eta,
        0,
    )
}

/// [`run_cell`] with an explicit thread count for the cell's internal
/// fan-outs (`0` = auto, `1` = fully serial). Results are bit-identical at
/// any value.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_with_threads(
    dataset: &Dataset,
    differentiator: DifferentiatorKind,
    imputer: ImputerKind,
    estimators: &[EstimatorKind],
    attention: AttentionMode,
    time_lag: TimeLagMode,
    removal_ratio_alpha: f64,
    eta: f64,
    threads: usize,
) -> CellResult {
    let seed = experiment_seed();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    // Optional α-removal (Fig. 12): nullify a fraction of the observed RSSIs
    // before differentiation.
    let map = if removal_ratio_alpha > 0.0 {
        remove_random_rssis(&dataset.radio_map, removal_ratio_alpha, &mut rng).0
    } else {
        dataset.radio_map.clone()
    };

    // Hold out 10 % of the RP-observed records as online test queries.
    let (_, test_indices) = rm_radiomap::split_test_records(&map, 0.1, &mut rng);
    let ground_truth: Vec<(usize, Point)> = test_indices
        .iter()
        .map(|&i| (i, map.record(i).rp.expect("test records have RPs")))
        .collect();
    let mut working = map.clone();
    for &(i, _) in &ground_truth {
        working.records_mut()[i].rp = None;
    }

    let config = PipelineConfig {
        differentiator,
        imputer,
        eta,
        attention,
        time_lag,
        seed,
        threads,
        precision: experiment_precision(),
        snapshot_dtype: experiment_snapshot_dtype(),
        ..PipelineConfig::default()
    };
    let pipeline = radiomap_core::ImputationPipeline::new(config);

    let diff_start = Instant::now();
    let mask = pipeline.differentiate(&working, &dataset.venue.walls);
    let differentiation_seconds = diff_start.elapsed().as_secs_f64();
    let mar_fraction = mask.mar_fraction();

    let imputer_impl = imputer.build_with(&pipeline.build_options(seed));
    let imp_start = Instant::now();
    let imputed = imputer_impl.impute(&working, &mask);
    let imputation_seconds = imp_start.elapsed().as_secs_f64();

    // Training radio map: everything except the test records. Sorted-slice
    // membership instead of a hash set keeps the deterministic path free of
    // unordered structures (same O(log n) lookup).
    let mut test_set: Vec<usize> = test_indices.to_vec();
    test_set.sort_unstable();
    let mut fingerprints = Vec::new();
    let mut locations = Vec::new();
    for i in 0..imputed.len() {
        if test_set.binary_search(&i).is_ok() {
            continue;
        }
        if let Some(loc) = imputed.locations[i] {
            fingerprints.push(imputed.fingerprints[i].clone());
            locations.push(loc);
        }
    }
    let dense = DenseRadioMap::new(fingerprints, locations, map.num_aps());
    let queries: Vec<TestQuery> = ground_truth
        .iter()
        .map(|&(i, location)| TestQuery {
            fingerprint: imputed.fingerprints[i].clone(),
            location,
        })
        .collect();

    let ape_by_estimator = estimators
        .iter()
        .map(|&kind| {
            let estimator = kind.build_threads(dense.clone(), 3, threads);
            let ape =
                rm_positioning::evaluate_estimator_threads(estimator.as_ref(), &queries, threads)
                    .unwrap_or(f64::NAN);
            (kind, ape)
        })
        .collect();

    CellResult {
        ape_by_estimator,
        differentiation_seconds,
        imputation_seconds,
        mar_fraction,
    }
}

/// Runs a whole grid of `(differentiator, imputer)` cells through
/// [`run_cell_with_threads`], fanning the cells out over the deterministic
/// `rm-runtime` pool (`threads = 0` means auto — `RM_THREADS`, else
/// available parallelism). The same `threads` value bounds the per-cell
/// internal fan-outs, so `threads = 1` really is the fully serial path
/// (inside pool workers the inner fan-outs degrade to serial on their own).
/// Cells are independent experiments sharing one read-only dataset, so the
/// results are returned in cell order and are bit-identical to calling
/// [`run_cell`] serially for each cell.
pub fn run_grid(
    dataset: &Dataset,
    cells: &[(DifferentiatorKind, ImputerKind)],
    estimators: &[EstimatorKind],
    threads: usize,
) -> Vec<CellResult> {
    rm_runtime::par_map(threads, cells, |_, &(differentiator, imputer)| {
        run_cell_with_threads(
            dataset,
            differentiator,
            imputer,
            estimators,
            AttentionMode::SparsityFriendly,
            TimeLagMode::Encoder,
            0.0,
            0.1,
            threads,
        )
    })
}

/// Runs only differentiation + imputation on a perturbed map and returns the
/// imputed map (used by the β-removal experiments of Fig. 14/15).
pub fn impute_only(
    map: &RadioMap,
    topology: &MultiPolygon,
    differentiator: DifferentiatorKind,
    imputer: ImputerKind,
) -> ImputedRadioMap {
    let seed = experiment_seed();
    let config = PipelineConfig {
        differentiator,
        imputer,
        seed,
        ..PipelineConfig::default()
    };
    radiomap_core::ImputationPipeline::new(config)
        .impute(map, topology)
        .0
}

/// A simple fixed-width text table accumulated row by row and printed to
/// stdout; every experiment binary emits one (or more) of these, mirroring the
/// corresponding table or figure of the paper.
pub struct ReportTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ReportTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with two decimals, rendering NaN as `n/a`.
pub fn fmt(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "n/a".to_string()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    use super::*;

    /// Serialises the tests that mutate process-wide environment variables
    /// (`RM_SCALE`, `RM_QUICK`) so they cannot race each other under the
    /// parallel test runner.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    /// Holds the lock and restores the captured variables on drop, so a
    /// failing assertion cannot leak quick-mode settings into later tests.
    struct EnvGuard {
        _lock: MutexGuard<'static, ()>,
        saved: Vec<(&'static str, Option<String>)>,
    }

    fn env_guard(vars: &[&'static str]) -> EnvGuard {
        EnvGuard {
            _lock: ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner),
            saved: vars
                .iter()
                // rm-lint: allow(no-raw-env-read): snapshots variables so the guard can restore them — not a knob resolution
                .map(|&name| (name, std::env::var(name).ok()))
                .collect(),
        }
    }

    impl Drop for EnvGuard {
        fn drop(&mut self) {
            for (name, value) in &self.saved {
                match value {
                    Some(v) => std::env::set_var(name, v),
                    None => std::env::remove_var(name),
                }
            }
        }
    }

    #[test]
    fn report_table_renders_all_rows() {
        let mut t = ReportTable::new("demo", &["a", "b"]);
        t.add_row(vec!["1".into(), "2.50".into()]);
        t.add_row(vec!["long-name".into(), "3".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-name"));
        assert!(s.contains("2.50"));
    }

    #[test]
    fn fmt_handles_nan() {
        assert_eq!(fmt(f64::NAN), "n/a");
        assert_eq!(fmt(1.005), "1.00");
    }

    /// A small explicit scale keeps the test fast without mutating the
    /// process environment: `RM_SCALE` is resolved once per process and
    /// cached, so tests pass explicit values instead of `set_var`.
    fn test_dataset(preset: VenuePreset) -> Dataset {
        DatasetSpec::new(preset, experiment_seed())
            .with_scale(0.05)
            .build()
    }

    #[test]
    fn run_cell_with_fast_imputer() {
        let dataset = test_dataset(VenuePreset::KaideLike);
        let cell = run_cell(
            &dataset,
            DifferentiatorKind::MnarOnly,
            ImputerKind::LinearInterpolation,
            &[EstimatorKind::Wknn, EstimatorKind::Knn],
            AttentionMode::SparsityFriendly,
            TimeLagMode::Encoder,
            0.0,
            0.1,
        );
        assert_eq!(cell.ape_by_estimator.len(), 2);
        assert!(cell.ape(EstimatorKind::Wknn).is_finite());
        assert!(cell.ape(EstimatorKind::RandomForest).is_nan());
    }

    #[test]
    fn run_grid_is_bit_identical_to_serial_cells() {
        let dataset = test_dataset(VenuePreset::KaideLike);
        let cells = [
            (
                DifferentiatorKind::MnarOnly,
                ImputerKind::LinearInterpolation,
            ),
            (DifferentiatorKind::MarOnly, ImputerKind::CaseDeletion),
            (DifferentiatorKind::MnarOnly, ImputerKind::SemiSupervised),
        ];
        let estimators = [EstimatorKind::Wknn];
        let parallel = run_grid(&dataset, &cells, &estimators, 3);
        let serial = run_grid(&dataset, &cells, &estimators, 1);
        assert_eq!(parallel.len(), cells.len());
        for (p, s) in parallel.iter().zip(serial.iter()) {
            assert_eq!(
                p.ape(EstimatorKind::Wknn).to_bits(),
                s.ape(EstimatorKind::Wknn).to_bits()
            );
        }
    }

    /// Smoke test for the harness itself: under `RM_QUICK=1`, dataset
    /// construction and one full evaluate round (including a neural imputer at
    /// its quick epoch count) complete without panicking.
    ///
    /// `RM_QUICK` must be set *before* the first `default_epochs` resolution
    /// in this process — the knob is cached once, by design. This test is the
    /// only caller in the rm-bench test binary, so priming it under the guard
    /// here is sound; the dataset scale is passed explicitly (the scale cache
    /// may already be resolved by the other tests).
    #[test]
    fn quick_mode_dataset_and_evaluate_round_complete() {
        let _guard = env_guard(&["RM_QUICK"]);
        std::env::set_var("RM_QUICK", "1");

        let dataset = test_dataset(VenuePreset::KaideLike);
        assert!(
            !dataset.radio_map.is_empty(),
            "quick dataset must be non-empty"
        );
        assert!(dataset.radio_map.num_aps() > 0);

        let cell = run_cell(
            &dataset,
            DifferentiatorKind::MnarOnly,
            ImputerKind::Brits,
            &[EstimatorKind::Wknn],
            AttentionMode::SparsityFriendly,
            TimeLagMode::Encoder,
            0.0,
            0.1,
        );
        assert_eq!(cell.ape_by_estimator.len(), 1);
        assert!(cell.ape(EstimatorKind::Wknn).is_finite());
        assert!(cell.differentiation_seconds >= 0.0);
        assert!(cell.imputation_seconds >= 0.0);
    }
}
