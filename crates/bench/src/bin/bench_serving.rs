//! Serving-latency harness: p50/p99 per-query latency and sustained
//! queries/sec of the `rm-serve` batched front end at 1/4/8 fan-out threads.
//!
//! The measured path is the real serving loop — registry lookup, micro-batch
//! assembly, `par_map` fan-out over the persistent pool — against a
//! 500×60 dense map (the `bench_positioning` estimator scale). Per-batch
//! wall time is divided by the batch size to report per-query latency, and
//! the percentile spread comes from the distribution of full-batch flushes,
//! so queue time inside a batch is included (a query's latency is the time
//! until its whole batch returns, which is what a caller observes).
//!
//! Determinism note: the thread axis changes wall-clock only — the suite
//! pins bit-identical responses at every width, so these legs all compute
//! the same answers.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rm_bench::ReportTable;
use rm_geometry::Point;
use rm_positioning::EstimatorKind;
use rm_radiomap::{DenseRadioMap, MaskMatrix};
use rm_serve::{ModelRegistry, QueryEngine, MAX_MICRO_BATCH};
use rm_tensor::{Precision, SnapshotDtype};

const MAP_RECORDS: usize = 500;
const NUM_APS: usize = 60;
const WARMUP_BATCHES: usize = 10;
const MEASURED_BATCHES: usize = 400;

fn synthetic_snapshot() -> radiomap_core::VenueSnapshot {
    let mut rng = StdRng::seed_from_u64(11);
    let fingerprints = (0..MAP_RECORDS)
        .map(|_| (0..NUM_APS).map(|_| rng.gen_range(-100.0..-40.0)).collect())
        .collect();
    let locations = (0..MAP_RECORDS)
        .map(|_| Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..40.0)))
        .collect();
    radiomap_core::VenueSnapshot {
        venue: "bench".into(),
        map: DenseRadioMap::new(fingerprints, locations, NUM_APS),
        mask: MaskMatrix::all_observed(MAP_RECORDS, NUM_APS),
        estimator: EstimatorKind::Wknn,
        knn_k: 3,
        seed: 11,
        precision: Precision::F64,
        snapshot_dtype: SnapshotDtype::Native,
        tensors: Vec::new(),
    }
}

fn query_log(batches: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(17);
    (0..batches * MAX_MICRO_BATCH)
        .map(|_| (0..NUM_APS).map(|_| rng.gen_range(-100.0..-40.0)).collect())
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let index = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[index]
}

fn main() {
    let registry = ModelRegistry::new();
    registry.publish(synthetic_snapshot(), 0);
    let log = query_log(WARMUP_BATCHES + MEASURED_BATCHES);

    let mut table = ReportTable::new(
        &format!(
            "Serving latency, {MAP_RECORDS}x{NUM_APS} WKNN map, \
             batch={MAX_MICRO_BATCH}, {MEASURED_BATCHES} batches"
        ),
        &["threads", "p50 us/query", "p99 us/query", "queries/sec"],
    );
    for threads in [1usize, 4, 8] {
        let mut engine = QueryEngine::new(&registry, "bench", threads);
        let mut batch_seconds = Vec::with_capacity(MEASURED_BATCHES);
        let mut measured_span = 0.0f64;
        for (batch_index, batch) in log.chunks(MAX_MICRO_BATCH).enumerate() {
            let start = Instant::now();
            for query in batch {
                engine.submit(query.clone());
            }
            let responses = engine.drain();
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(responses.len(), MAX_MICRO_BATCH);
            if batch_index >= WARMUP_BATCHES {
                batch_seconds.push(elapsed);
                measured_span += elapsed;
            }
        }
        batch_seconds.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let per_query_us = |batch_s: f64| batch_s / MAX_MICRO_BATCH as f64 * 1e6;
        let queries = (batch_seconds.len() * MAX_MICRO_BATCH) as f64;
        table.add_row(vec![
            threads.to_string(),
            format!("{:.2}", per_query_us(percentile(&batch_seconds, 0.50))),
            format!("{:.2}", per_query_us(percentile(&batch_seconds, 0.99))),
            format!("{:.0}", queries / measured_span),
        ]);
    }
    table.print();
}
