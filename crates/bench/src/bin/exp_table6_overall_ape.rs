//! Table VI: overall APE comparison of all imputers under KNN, WKNN and RF on
//! both Wi-Fi venues. `D-BiSIM` pairs BiSIM with the DasaKM differentiator,
//! `T-BiSIM` with TopoAC; the other imputers use TopoAC's MAR/MNAR mask (the
//! setting reported in the paper).

use radiomap_core::prelude::*;
use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{experiment_dataset, fmt, run_cell, wifi_presets, ReportTable};

fn main() {
    let estimators = EstimatorKind::all();
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let mut table = ReportTable::new(
            &format!("Table VI — overall APE (m), {}", preset.name()),
            &["Imputer", "KNN", "WKNN", "RF", "diff(s)", "impute(s)"],
        );
        let mut cells: Vec<(String, rm_bench::CellResult)> = Vec::new();
        for imputer in [
            ImputerKind::CaseDeletion,
            ImputerKind::LinearInterpolation,
            ImputerKind::SemiSupervised,
            ImputerKind::Mice,
            ImputerKind::MatrixFactorization,
            ImputerKind::Brits,
            ImputerKind::Ssgan,
        ] {
            let cell = run_cell(
                &dataset,
                DifferentiatorKind::TopoAc,
                imputer,
                &estimators,
                AttentionMode::SparsityFriendly,
                TimeLagMode::Encoder,
                0.0,
                0.1,
            );
            cells.push((imputer.name().to_string(), cell));
        }
        // D-BiSIM and T-BiSIM.
        for (label, diff) in [
            ("D-BiSIM", DifferentiatorKind::DasaKm),
            ("T-BiSIM", DifferentiatorKind::TopoAc),
        ] {
            let cell = run_cell(
                &dataset,
                diff,
                ImputerKind::Bisim,
                &estimators,
                AttentionMode::SparsityFriendly,
                TimeLagMode::Encoder,
                0.0,
                0.1,
            );
            cells.push((label.to_string(), cell));
        }
        for (label, cell) in &cells {
            table.add_row(vec![
                label.clone(),
                fmt(cell.ape(EstimatorKind::Knn)),
                fmt(cell.ape(EstimatorKind::Wknn)),
                fmt(cell.ape(EstimatorKind::RandomForest)),
                fmt(cell.differentiation_seconds),
                fmt(cell.imputation_seconds),
            ]);
        }
        table.print();
    }
}
