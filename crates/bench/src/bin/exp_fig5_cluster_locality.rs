//! Fig. 3/5: locality of AP profiles — fingerprints with similar binarized AP
//! profiles should be spatially close. We cluster the AP profiles with K-means
//! and compare the mean intra-cluster spatial dispersion against a random
//! clustering of the same sizes.

use radiomap_core::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rm_bench::{experiment_dataset, fmt, wifi_presets, ReportTable};
use rm_clustering::{kmeans, KMeansConfig};
use rm_differentiator::build_samples;

fn dispersion(locations: &[Point], clusters: &[Vec<usize>]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for members in clusters {
        if members.len() < 2 {
            continue;
        }
        let pts: Vec<Point> = members.iter().map(|&m| locations[m]).collect();
        let c = rm_geometry::centroid(&pts).unwrap_or_default();
        for p in pts {
            total += p.distance(c);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn main() {
    let mut table = ReportTable::new(
        "Fig. 5 — Spatial locality of AP-profile clusters (mean intra-cluster dispersion, metres)",
        &["Venue", "K", "AP-profile clustering", "Random clustering"],
    );
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let samples = build_samples(&dataset.radio_map);
        let locations: Vec<Point> = samples
            .iter()
            .map(|s| s.location.unwrap_or_default())
            .collect();
        // Cluster on binary AP profiles only (no location features), as in the
        // exploratory analysis of Section III-A.
        let profiles: Vec<Vec<f64>> = samples.iter().map(|s| s.profile.clone()).collect();
        let k = 12;
        let mut rng = StdRng::seed_from_u64(1);
        let clustering = kmeans(&profiles, &KMeansConfig::new(k), &mut rng);
        let real = dispersion(&locations, &clustering.clusters());

        // Random clustering with identical cluster sizes.
        let mut shuffled: Vec<usize> = (0..samples.len()).collect();
        shuffled.shuffle(&mut rng);
        let mut random_clusters = Vec::new();
        let mut cursor = 0;
        for members in clustering.clusters() {
            let size = members.len();
            random_clusters.push(shuffled[cursor..cursor + size].to_vec());
            cursor += size;
        }
        let random = dispersion(&locations, &random_clusters);
        table.add_row(vec![
            preset.name().to_string(),
            k.to_string(),
            fmt(real),
            fmt(random),
        ]);
    }
    table.print();
    println!("AP-profile clusters should be markedly tighter than random groups,");
    println!("supporting the locality hypothesis of Section III-A.");
}
