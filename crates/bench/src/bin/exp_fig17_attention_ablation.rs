//! Fig. 17: attention ablation — T-BiSIM with the sparsity-friendly adapted
//! Bahdanau attention, plain Bahdanau attention, and no attention.

use radiomap_core::prelude::*;
use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{experiment_dataset, fmt, run_cell, wifi_presets, ReportTable};

fn main() {
    let variants = [
        ("Adapted Bahdanau", AttentionMode::SparsityFriendly),
        ("Bahdanau", AttentionMode::Standard),
        ("No attention", AttentionMode::None),
    ];
    let mut table = ReportTable::new(
        "Fig. 17 — attention ablation, APE (m), T-BiSIM + WKNN",
        &["Variant", "kaide-like", "wanda-like"],
    );
    let datasets: Vec<_> = wifi_presets()
        .iter()
        .map(|&p| experiment_dataset(p))
        .collect();
    for (label, attention) in variants {
        let mut row = vec![label.to_string()];
        for dataset in &datasets {
            let cell = run_cell(
                dataset,
                DifferentiatorKind::TopoAc,
                ImputerKind::Bisim,
                &[EstimatorKind::Wknn],
                attention,
                TimeLagMode::Encoder,
                0.0,
                0.1,
            );
            row.push(fmt(cell.ape(EstimatorKind::Wknn)));
        }
        table.add_row(row);
    }
    table.print();
}
