//! Snapshot-storage report: resident bytes of the recurrent imputers'
//! inference snapshots at each storage dtype, and the per-venue accuracy
//! cost of running f32 inference from bf16-resident snapshots.
//!
//! This is the measurement half of the sub-f32 storage contract: bf16 must
//! cut resident snapshot bytes ≥2× against f32 (4× against f64), and the
//! accuracy delta it buys that with has to be on the table, not assumed.

use radiomap_core::prelude::*;
use radiomap_core::{rssi_imputation_mae, DifferentiatorKind, ImputerKind, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_bench::{experiment_dataset, experiment_seed, fmt, wifi_presets, ReportTable};

fn main() {
    // ---- Resident bytes of a BRITS-shaped inference snapshot. ----
    let mut bytes_table = ReportTable::new(
        "Snapshot resident bytes (one BRITS direction)",
        &["APs", "hidden", "f64", "f32", "bf16", "f64/bf16"],
    );
    for (aps, hidden) in [(24usize, 32usize), (60, 64), (120, 64)] {
        let (b64, b32, b16) = rm_imputers::snapshot_resident_bytes(aps, hidden);
        bytes_table.add_row(vec![
            aps.to_string(),
            hidden.to_string(),
            b64.to_string(),
            b32.to_string(),
            b16.to_string(),
            format!("{:.2}x", b64 as f64 / b16 as f64),
        ]);
    }
    bytes_table.print();

    // ---- Accuracy cost per venue (β=0.2 RSSI-imputation MAE, BRITS). ----
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let mut rng = StdRng::seed_from_u64(experiment_seed() ^ 0x51a9);
        let (perturbed, removed) = remove_random_rssis(&dataset.radio_map, 0.2, &mut rng);
        let mae = |precision, snapshot_dtype| {
            let config = PipelineConfig {
                differentiator: DifferentiatorKind::TopoAc,
                imputer: ImputerKind::Brits,
                precision,
                snapshot_dtype,
                seed: experiment_seed(),
                ..PipelineConfig::default()
            };
            let imputed = radiomap_core::ImputationPipeline::new(config)
                .impute(&perturbed, &dataset.venue.walls)
                .0;
            rssi_imputation_mae(&imputed, &removed).unwrap_or(f64::NAN)
        };
        let base = mae(Precision::F64, SnapshotDtype::Native);
        let mut table = ReportTable::new(
            &format!("Snapshot dtype vs BRITS RSSI MAE (dBm), {}", preset.name()),
            &["precision/dtype", "MAE", "delta vs f64"],
        );
        table.add_row(vec!["f64/native".into(), fmt(base), fmt(0.0)]);
        for (label, precision, dtype) in [
            ("f32/native", Precision::F32, SnapshotDtype::Native),
            ("f32/bf16", Precision::F32, SnapshotDtype::Bf16),
        ] {
            let v = mae(precision, dtype);
            table.add_row(vec![label.into(), fmt(v), fmt(v - base)]);
        }
        table.print();
    }
}
