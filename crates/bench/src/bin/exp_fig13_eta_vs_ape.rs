//! Fig. 13: fraction threshold η vs APE for the differentiators, with BiSIM as
//! the imputer and WKNN as the location estimator.

use radiomap_core::prelude::*;
use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{experiment_dataset, fmt, run_cell, wifi_presets, ReportTable};

fn main() {
    let etas = [0.0, 0.1, 0.2, 0.3];
    let differentiators = [
        DifferentiatorKind::TopoAc,
        DifferentiatorKind::DasaKm,
        DifferentiatorKind::ElbowKm,
        DifferentiatorKind::MarOnly,
        DifferentiatorKind::MnarOnly,
    ];
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let mut table = ReportTable::new(
            &format!(
                "Fig. 13 — threshold η vs APE (m), {} (BiSIM + WKNN)",
                preset.name()
            ),
            &["Differentiator", "η=0", "η=0.1", "η=0.2", "η=0.3"],
        );
        for diff in differentiators {
            let mut row = vec![diff.name().to_string()];
            for &eta in &etas {
                let cell = run_cell(
                    &dataset,
                    diff,
                    ImputerKind::Bisim,
                    &[EstimatorKind::Wknn],
                    AttentionMode::SparsityFriendly,
                    TimeLagMode::Encoder,
                    0.0,
                    eta,
                );
                row.push(fmt(cell.ape(EstimatorKind::Wknn)));
            }
            table.add_row(row);
        }
        table.print();
    }
}
