//! Fig. 16: RP density vs APE — keeping only a fraction of the RP records in
//! the raw walking survey and running the full T-BiSIM pipeline.

use radiomap_core::prelude::*;
use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{experiment_dataset_with_rp_density, fmt, run_cell, wifi_presets, ReportTable};

fn main() {
    let densities = [0.6, 0.7, 0.8, 0.9, 1.0];
    let mut table = ReportTable::new(
        "Fig. 16 — RP density vs APE (m), T-BiSIM + WKNN",
        &["Venue", "60%", "70%", "80%", "90%", "100%"],
    );
    for preset in wifi_presets() {
        let mut row = vec![preset.name().to_string()];
        for &density in &densities {
            let dataset = experiment_dataset_with_rp_density(preset, density);
            let cell = run_cell(
                &dataset,
                DifferentiatorKind::TopoAc,
                ImputerKind::Bisim,
                &[EstimatorKind::Wknn],
                AttentionMode::SparsityFriendly,
                TimeLagMode::Encoder,
                0.0,
                0.1,
            );
            row.push(fmt(cell.ape(EstimatorKind::Wknn)));
        }
        table.add_row(row);
    }
    table.print();
}
