//! Fig. 12: removal ratio α vs APE for the five differentiators, with BiSIM as
//! the imputer and WKNN as the location estimator, on both Wi-Fi venues.

use radiomap_core::prelude::*;
use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{experiment_dataset, fmt, run_cell, wifi_presets, ReportTable};

fn main() {
    let alphas = [0.0, 0.05, 0.10, 0.15, 0.20];
    let differentiators = [
        DifferentiatorKind::TopoAc,
        DifferentiatorKind::DasaKm,
        DifferentiatorKind::ElbowKm,
        DifferentiatorKind::MarOnly,
        DifferentiatorKind::MnarOnly,
    ];
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let mut table = ReportTable::new(
            &format!(
                "Fig. 12 — removal ratio α vs APE (m), {} (BiSIM + WKNN)",
                preset.name()
            ),
            &["Differentiator", "α=0%", "α=5%", "α=10%", "α=15%", "α=20%"],
        );
        for diff in differentiators {
            let mut row = vec![diff.name().to_string()];
            for &alpha in &alphas {
                let cell = run_cell(
                    &dataset,
                    diff,
                    ImputerKind::Bisim,
                    &[EstimatorKind::Wknn],
                    AttentionMode::SparsityFriendly,
                    TimeLagMode::Encoder,
                    alpha,
                    0.1,
                );
                row.push(fmt(cell.ape(EstimatorKind::Wknn)));
            }
            table.add_row(row);
        }
        table.print();
    }
}
