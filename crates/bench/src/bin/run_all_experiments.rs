//! Driver for the experiment harness.
//!
//! Prints the index mapping every experiment binary to the paper's tables and
//! figures, then actually *runs* the core of the evaluation — the
//! differentiator × imputer grid behind Table VI (deterministic imputers) on
//! both Wi-Fi venues — fanning the independent cells out over the
//! deterministic `rm-runtime` thread pool.
//!
//! The grid is bit-identical at any thread count; parallelism only changes
//! wall-clock. Set `RM_THREADS=1` to time the serial fallback path, or
//! `RM_INDEX_ONLY=1` to print the index without running the grid (the
//! original behaviour of this driver).

use std::time::Instant;

use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{fmt, run_grid, wifi_presets, ReportTable};
use rm_positioning::EstimatorKind;

fn print_index() {
    let experiments = [
        (
            "exp_table5_venues",
            "Table V — venue and radio-map statistics",
        ),
        (
            "exp_fig5_cluster_locality",
            "Fig. 3/5 — spatial locality of AP profiles",
        ),
        (
            "exp_fig7_topology_clusters",
            "Fig. 6/7 — DasaKM vs TopoAC cluster shapes",
        ),
        (
            "exp_fig12_alpha_vs_ape",
            "Fig. 12 — removal ratio α vs APE per differentiator",
        ),
        (
            "exp_fig13_eta_vs_ape",
            "Fig. 13 — fraction threshold η vs APE",
        ),
        (
            "exp_table6_overall_ape",
            "Table VI — overall APE of all imputers × estimators",
        ),
        ("exp_table7_time_cost", "Table VII — imputation time cost"),
        (
            "exp_fig14_beta_vs_mae",
            "Fig. 14 — removal ratio β vs RSSI MAE",
        ),
        (
            "exp_fig15_beta_vs_rp_error",
            "Fig. 15 — removal ratio β vs RP Euclidean error",
        ),
        ("exp_fig16_rp_density", "Fig. 16 — RP density vs APE"),
        (
            "exp_fig17_attention_ablation",
            "Fig. 17 — attention ablation",
        ),
        ("exp_fig18_timelag_ablation", "Fig. 18 — time-lag ablation"),
        (
            "exp_table8_bluetooth",
            "Table VIII — Bluetooth venue (longhu-like)",
        ),
    ];
    println!("Experiment harness — one binary per table/figure of the paper:\n");
    for (bin, description) in experiments {
        println!("  cargo run -p rm-bench --release --bin {bin:<28} # {description}");
    }
    println!("\nScaling knobs: RM_SCALE (venue scale), RM_EPOCHS (neural training epochs),");
    println!("RM_QUICK=1 (small smoke-test configuration), RM_SEED (base seed),");
    println!("RM_THREADS (worker threads; results are bit-identical at any value).\n");
}

fn main() {
    print_index();
    if rm_bench::index_only() {
        return;
    }

    let differentiators = [
        DifferentiatorKind::TopoAc,
        DifferentiatorKind::DasaKm,
        DifferentiatorKind::ElbowKm,
        DifferentiatorKind::MarOnly,
        DifferentiatorKind::MnarOnly,
    ];
    // The deterministic imputers; the neural ones (BRITS/SSGAN/BiSIM) have
    // their own dedicated binaries (exp_table6/7) because their training time
    // dominates any grid they appear in.
    let imputers = [
        ImputerKind::CaseDeletion,
        ImputerKind::LinearInterpolation,
        ImputerKind::SemiSupervised,
        ImputerKind::Mice,
        ImputerKind::MatrixFactorization,
    ];
    let estimators = EstimatorKind::all();
    let cells: Vec<(DifferentiatorKind, ImputerKind)> = differentiators
        .iter()
        .flat_map(|&d| imputers.iter().map(move |&i| (d, i)))
        .collect();

    let threads = rm_runtime::default_threads();
    println!(
        "Running the differentiator × imputer grid ({} cells per venue) on {} thread(s)...\n",
        cells.len(),
        threads
    );

    let start = Instant::now();
    for preset in wifi_presets() {
        let dataset = rm_bench::experiment_dataset(preset);
        let venue_start = Instant::now();
        let results = run_grid(&dataset, &cells, &estimators, 0);
        let venue_seconds = venue_start.elapsed().as_secs_f64();

        let mut table = ReportTable::new(
            &format!("Overall APE (m) — {preset:?}"),
            &["Differentiator", "Imputer", "KNN", "WKNN", "RF", "imp. s"],
        );
        for (&(differentiator, imputer), cell) in cells.iter().zip(results.iter()) {
            table.add_row(vec![
                differentiator.name().to_string(),
                imputer.name().to_string(),
                fmt(cell.ape(EstimatorKind::Knn)),
                fmt(cell.ape(EstimatorKind::Wknn)),
                fmt(cell.ape(EstimatorKind::RandomForest)),
                format!("{:.3}", cell.imputation_seconds),
            ]);
        }
        table.print();
        println!("venue wall-clock: {venue_seconds:.2} s\n");
    }
    println!(
        "total grid wall-clock: {:.2} s on {} thread(s)",
        start.elapsed().as_secs_f64(),
        threads
    );
}
