//! Convenience driver that lists every experiment binary and how it maps to
//! the paper's tables and figures. Run the individual binaries to regenerate a
//! specific artifact; this driver only prints the index so that
//! `cargo run -p rm-bench --bin run_all_experiments` documents the mapping.

fn main() {
    let experiments = [
        (
            "exp_table5_venues",
            "Table V — venue and radio-map statistics",
        ),
        (
            "exp_fig5_cluster_locality",
            "Fig. 3/5 — spatial locality of AP profiles",
        ),
        (
            "exp_fig7_topology_clusters",
            "Fig. 6/7 — DasaKM vs TopoAC cluster shapes",
        ),
        (
            "exp_fig12_alpha_vs_ape",
            "Fig. 12 — removal ratio α vs APE per differentiator",
        ),
        (
            "exp_fig13_eta_vs_ape",
            "Fig. 13 — fraction threshold η vs APE",
        ),
        (
            "exp_table6_overall_ape",
            "Table VI — overall APE of all imputers × estimators",
        ),
        ("exp_table7_time_cost", "Table VII — imputation time cost"),
        (
            "exp_fig14_beta_vs_mae",
            "Fig. 14 — removal ratio β vs RSSI MAE",
        ),
        (
            "exp_fig15_beta_vs_rp_error",
            "Fig. 15 — removal ratio β vs RP Euclidean error",
        ),
        ("exp_fig16_rp_density", "Fig. 16 — RP density vs APE"),
        (
            "exp_fig17_attention_ablation",
            "Fig. 17 — attention ablation",
        ),
        ("exp_fig18_timelag_ablation", "Fig. 18 — time-lag ablation"),
        (
            "exp_table8_bluetooth",
            "Table VIII — Bluetooth venue (longhu-like)",
        ),
    ];
    println!("Experiment harness — one binary per table/figure of the paper:\n");
    for (bin, description) in experiments {
        println!("  cargo run -p rm-bench --release --bin {bin:<28} # {description}");
    }
    println!("\nScaling knobs: RM_SCALE (venue scale), RM_EPOCHS (neural training epochs),");
    println!("RM_QUICK=1 (small smoke-test configuration), RM_SEED (base seed).");
}
