//! Table V: statistics of the three synthetic venues and their radio maps.

use radiomap_core::prelude::*;
use rm_bench::{experiment_dataset, ReportTable};

fn main() {
    let mut table = ReportTable::new(
        "Table V — Statistics of Venues and Created Radio Maps",
        &[
            "Venue",
            "Area(m2)",
            "RP/100m2",
            "#Fingerprints",
            "#RPs",
            "#APs",
            "RSSI-miss%",
            "RP-miss%",
        ],
    );
    for preset in VenuePreset::all() {
        let dataset = experiment_dataset(preset);
        let s = dataset.stats();
        table.add_row(vec![
            s.venue.clone(),
            format!("{:.1}", s.floor_area_m2),
            format!("{:.2}", s.rp_density_per_100m2),
            s.num_fingerprints.to_string(),
            s.num_rps.to_string(),
            s.num_aps.to_string(),
            format!("{:.1}", s.missing_rssi_rate * 100.0),
            format!("{:.1}", s.missing_rp_rate * 100.0),
        ]);
    }
    table.print();
}
