//! Sharding harness: wall-clock cost of the sharded "live venue" pipeline
//! against its whole-venue equivalents.
//!
//! Three measurements on a 16-path synthetic venue (one spatial shard per
//! path):
//!
//! 1. **Sharded vs unsharded imputation** — `export_sharded_snapshot` at 16
//!    shards vs `export_snapshot`, same records, same imputer. Sharding
//!    bounds peak memory by the largest shard and makes each shard an
//!    independent publish unit; on a single core its wall-clock should stay
//!    near the unsharded run (the work is the same records, just
//!    partitioned).
//! 2. **Incremental vs full recompute** — a `LiveVenue` ingest that dirties
//!    one shard vs recomputing all 16. The dirty-shard path must be ≥5×
//!    cheaper (it recomputes 1/16 of the venue).
//! 3. **Per-shard vs whole-venue publish** — `ModelRegistry::publish_shard`
//!    (one estimator rebuild + Arc compose) vs `publish_sharded` (all 16).
//!
//! Determinism note: every measured path is pinned bit-identical across
//! thread counts by the determinism suite; these legs change wall-clock
//! only.

use std::time::Instant;

use radiomap_core::prelude::*;
use radiomap_core::{LiveVenue, PipelineConfig};
use rm_bench::ReportTable;
use rm_serve::ModelRegistry;

const NUM_PATHS: usize = 16;
const RECORDS_PER_PATH: usize = 24;
const NUM_APS: usize = 32;

/// A venue surveyed along `NUM_PATHS` spatially separated paths; path `p`
/// hears a sliding window of APs around `2p`, with a deterministic missing
/// pattern and an RP every third record.
fn survey_map() -> RadioMap {
    let mut records = Vec::new();
    for path in 0..NUM_PATHS {
        for i in 0..RECORDS_PER_PATH {
            let values: Vec<Option<f64>> = (0..NUM_APS)
                .map(|ap| {
                    let offset = (ap + NUM_APS - 2 * path) % NUM_APS;
                    if offset < 6 {
                        Some(-45.0 - offset as f64 * 5.0 - (i % 7) as f64)
                    } else if (i + ap) % 5 == 0 {
                        Some(-85.0 - ((i + ap) % 9) as f64)
                    } else {
                        None
                    }
                })
                .collect();
            let rp = if i % 3 == 0 {
                Some(Point::new(
                    path as f64 * 30.0 + i as f64 * 1.5,
                    (path % 4) as f64 * 12.0,
                ))
            } else {
                None
            };
            records.push(RadioMapRecord::new(
                Fingerprint::new(values),
                rp,
                i as f64,
                path,
            ));
        }
    }
    RadioMap::new(records, NUM_APS)
}

fn config(shards: usize) -> PipelineConfig {
    PipelineConfig {
        differentiator: DifferentiatorKind::MarOnly,
        imputer: ImputerKind::Brits,
        epochs: Some(2),
        threads: 1,
        shards: Some(shards),
        ..PipelineConfig::default()
    }
}

/// A fresh survey pass landing spatially inside one existing shard.
fn ingest_log() -> Vec<RadioMapRecord> {
    (0..4)
        .map(|i| {
            let values: Vec<Option<f64>> = (0..NUM_APS)
                .map(|ap| {
                    if (ap + NUM_APS - 10) % NUM_APS < 6 {
                        Some(-50.0 - i as f64 - ap as f64 * 0.5)
                    } else {
                        None
                    }
                })
                .collect();
            RadioMapRecord::new(
                Fingerprint::new(values),
                Some(Point::new(151.0 + i as f64, 12.0)),
                i as f64,
                1000,
            )
        })
        .collect()
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let map = survey_map();
    let topology = MultiPolygon::empty();

    let mut table = ReportTable::new(
        &format!(
            "Sharded pipeline, {} records x {NUM_APS} APs, {NUM_PATHS} paths, BRITS epochs=2",
            map.len()
        ),
        &["measurement", "ms", "vs reference"],
    );

    // 1. Sharded vs unsharded imputation.
    let (_, unsharded_ms) =
        time(|| ImputationPipeline::new(config(1)).export_snapshot("bench", &map, &topology));
    let (sharded, sharded_ms) = time(|| {
        ImputationPipeline::new(config(NUM_PATHS)).export_sharded_snapshot("bench", &map, &topology)
    });
    assert_eq!(sharded.num_shards(), NUM_PATHS);
    table.add_row(vec![
        "unsharded export".into(),
        format!("{unsharded_ms:.1}"),
        "1.00x".into(),
    ]);
    table.add_row(vec![
        format!("sharded export ({NUM_PATHS} shards)"),
        format!("{sharded_ms:.1}"),
        format!("{:.2}x", sharded_ms / unsharded_ms),
    ]);

    // 2. Incremental 1-dirty-shard ingest vs full recompute.
    let (mut live, _) = time(|| {
        LiveVenue::build(
            "bench",
            survey_map(),
            MultiPolygon::empty(),
            config(NUM_PATHS),
        )
    });
    let (_, full_ms) = time(|| live.recompute_all());
    let log = ingest_log();
    let (dirty, incremental_ms) = time(|| live.ingest(&log));
    assert_eq!(dirty.len(), 1, "the log must dirty exactly one shard");
    table.add_row(vec![
        format!("full recompute ({NUM_PATHS} shards)"),
        format!("{full_ms:.1}"),
        "1.00x".into(),
    ]);
    table.add_row(vec![
        "incremental ingest (1 dirty shard)".into(),
        format!("{incremental_ms:.1}"),
        format!("{:.2}x", incremental_ms / full_ms),
    ]);
    let speedup = full_ms / incremental_ms;
    table.add_row(vec![
        "incremental speedup".into(),
        format!("{speedup:.1}x"),
        if speedup >= 5.0 {
            "PASS (>=5x)"
        } else {
            "FAIL (<5x)"
        }
        .into(),
    ]);

    // 3. Per-shard vs whole-venue publish.
    let registry = ModelRegistry::new();
    let snapshot = live.sharded_snapshot();
    let (_, publish_all_ms) = time(|| registry.publish_sharded(snapshot, 1));
    let dirty_shard = dirty[0];
    let (_, publish_one_ms) = time(|| {
        registry.publish_shard(
            "bench",
            dirty_shard,
            live.snapshots()[dirty_shard].clone(),
            live.shards(),
            1,
        )
    });
    table.add_row(vec![
        format!("publish_sharded ({NUM_PATHS} shards)"),
        format!("{publish_all_ms:.2}"),
        "1.00x".into(),
    ]);
    table.add_row(vec![
        "publish_shard (1 shard)".into(),
        format!("{publish_one_ms:.2}"),
        format!("{:.2}x", publish_one_ms / publish_all_ms),
    ]);

    table.print();
    assert!(
        speedup >= 5.0,
        "incremental ingest must be >=5x cheaper than a full recompute \
         (measured {speedup:.1}x)"
    );
}
