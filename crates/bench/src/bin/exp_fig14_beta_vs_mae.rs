//! Fig. 14: removal ratio β vs RSSI-imputation MAE (dBm) for the model-based
//! imputers. β removes observed RSSIs *after* MNAR filling, and the removed
//! values are the ground truth.

use radiomap_core::prelude::*;
use radiomap_core::{rssi_imputation_mae, DifferentiatorKind, ImputerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_bench::{experiment_dataset, experiment_seed, fmt, impute_only, wifi_presets, ReportTable};

fn main() {
    let betas = [0.1, 0.2, 0.3, 0.4, 0.5];
    let imputers = [
        ("T-BiSIM", DifferentiatorKind::TopoAc, ImputerKind::Bisim),
        ("D-BiSIM", DifferentiatorKind::DasaKm, ImputerKind::Bisim),
        ("SSGAN", DifferentiatorKind::TopoAc, ImputerKind::Ssgan),
        ("BRITS", DifferentiatorKind::TopoAc, ImputerKind::Brits),
        (
            "MF",
            DifferentiatorKind::TopoAc,
            ImputerKind::MatrixFactorization,
        ),
        ("MICE", DifferentiatorKind::TopoAc, ImputerKind::Mice),
    ];
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let mut table = ReportTable::new(
            &format!(
                "Fig. 14 — removal ratio β vs RSSI MAE (dBm), {}",
                preset.name()
            ),
            &["Imputer", "β=10%", "β=20%", "β=30%", "β=40%", "β=50%"],
        );
        for (label, diff, imputer) in imputers {
            let mut row = vec![label.to_string()];
            for &beta in &betas {
                let mut rng = StdRng::seed_from_u64(experiment_seed() ^ (beta * 1000.0) as u64);
                let (perturbed, removed) = remove_random_rssis(&dataset.radio_map, beta, &mut rng);
                let imputed = impute_only(&perturbed, &dataset.venue.walls, diff, imputer);
                row.push(
                    rssi_imputation_mae(&imputed, &removed)
                        .map(fmt)
                        .unwrap_or_else(|| "n/a".into()),
                );
            }
            table.add_row(row);
        }
        table.print();
    }
}
