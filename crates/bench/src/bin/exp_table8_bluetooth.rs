//! Table VIII: generalisability — APE of every imputer on the Bluetooth venue
//! (longhu-like) under KNN, WKNN and RF.

use radiomap_core::prelude::*;
use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{experiment_dataset, fmt, run_cell, ReportTable};

fn main() {
    let dataset = experiment_dataset(VenuePreset::LonghuLike);
    let estimators = EstimatorKind::all();
    let mut table = ReportTable::new(
        "Table VIII — APE on Bluetooth data (m), longhu-like",
        &["Imputer", "KNN", "WKNN", "RF"],
    );
    let mut runs: Vec<(String, DifferentiatorKind, ImputerKind)> = vec![
        (
            "CD".into(),
            DifferentiatorKind::TopoAc,
            ImputerKind::CaseDeletion,
        ),
        (
            "LI".into(),
            DifferentiatorKind::TopoAc,
            ImputerKind::LinearInterpolation,
        ),
        (
            "SL".into(),
            DifferentiatorKind::TopoAc,
            ImputerKind::SemiSupervised,
        ),
        ("MICE".into(), DifferentiatorKind::TopoAc, ImputerKind::Mice),
        (
            "MF".into(),
            DifferentiatorKind::TopoAc,
            ImputerKind::MatrixFactorization,
        ),
        (
            "BRITS".into(),
            DifferentiatorKind::TopoAc,
            ImputerKind::Brits,
        ),
        (
            "SSGAN".into(),
            DifferentiatorKind::TopoAc,
            ImputerKind::Ssgan,
        ),
        (
            "D-BiSIM".into(),
            DifferentiatorKind::DasaKm,
            ImputerKind::Bisim,
        ),
        (
            "T-BiSIM".into(),
            DifferentiatorKind::TopoAc,
            ImputerKind::Bisim,
        ),
    ];
    for (label, diff, imputer) in runs.drain(..) {
        let cell = run_cell(
            &dataset,
            diff,
            imputer,
            &estimators,
            AttentionMode::SparsityFriendly,
            TimeLagMode::Encoder,
            0.0,
            0.1,
        );
        table.add_row(vec![
            label,
            fmt(cell.ape(EstimatorKind::Knn)),
            fmt(cell.ape(EstimatorKind::Wknn)),
            fmt(cell.ape(EstimatorKind::RandomForest)),
        ]);
    }
    table.print();
}
