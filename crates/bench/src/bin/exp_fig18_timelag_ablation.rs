//! Fig. 18: time-lag ablation — T-BiSIM with the time-lag mechanism in the
//! encoder (the paper's design), in the decoder, in both, or disabled.

use radiomap_core::prelude::*;
use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{experiment_dataset, fmt, run_cell, wifi_presets, ReportTable};

fn main() {
    let variants = [
        ("Time-lag in Enc.", TimeLagMode::Encoder),
        ("Time-lag in Dec.", TimeLagMode::Decoder),
        ("Time-lag in Enc. and Dec.", TimeLagMode::Both),
        ("No time-lag", TimeLagMode::None),
    ];
    let mut table = ReportTable::new(
        "Fig. 18 — time-lag ablation, APE (m), T-BiSIM + WKNN",
        &["Variant", "kaide-like", "wanda-like"],
    );
    let datasets: Vec<_> = wifi_presets()
        .iter()
        .map(|&p| experiment_dataset(p))
        .collect();
    for (label, time_lag) in variants {
        let mut row = vec![label.to_string()];
        for dataset in &datasets {
            let cell = run_cell(
                dataset,
                DifferentiatorKind::TopoAc,
                ImputerKind::Bisim,
                &[EstimatorKind::Wknn],
                AttentionMode::SparsityFriendly,
                time_lag,
                0.0,
                0.1,
            );
            row.push(fmt(cell.ape(EstimatorKind::Wknn)));
        }
        table.add_row(row);
    }
    table.print();
}
