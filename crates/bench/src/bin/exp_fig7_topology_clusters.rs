//! Fig. 6/7: cluster shapes of DasaKM vs TopoAC — how many clusters have a
//! convex hull that crosses walls (the "abnormal" clusters TopoAC eliminates).

use radiomap_core::prelude::*;
use rm_bench::{experiment_dataset, wifi_presets, ReportTable};
use rm_differentiator::{build_samples, entity_exist, ClusteringStrategy, DasaKm, TopoAc};

fn wall_crossing_clusters(
    samples: &[rm_differentiator::DiffSample],
    clusters: &[Vec<usize>],
    walls: &MultiPolygon,
) -> usize {
    clusters
        .iter()
        .filter(|members| {
            let pts: Vec<Point> = members
                .iter()
                .map(|&m| samples[m].location.unwrap_or_default())
                .collect();
            entity_exist(&pts, walls)
        })
        .count()
}

fn main() {
    let mut table = ReportTable::new(
        "Fig. 6/7 — Clusters whose convex hull crosses topological entities",
        &["Venue", "Method", "#Clusters", "#Wall-crossing clusters"],
    );
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let samples = build_samples(&dataset.radio_map);

        let dasa = DasaKm::new(7);
        let dasa_clustering = dasa.cluster(&samples);
        table.add_row(vec![
            preset.name().to_string(),
            "DasaKM".into(),
            dasa_clustering.num_clusters().to_string(),
            wall_crossing_clusters(&samples, &dasa_clustering.clusters(), &dataset.venue.walls)
                .to_string(),
        ]);

        let topo = TopoAc::new(dataset.venue.walls.clone());
        let topo_clustering = topo.cluster(&samples);
        table.add_row(vec![
            preset.name().to_string(),
            "TopoAC".into(),
            topo_clustering.num_clusters().to_string(),
            wall_crossing_clusters(&samples, &topo_clustering.clusters(), &dataset.venue.walls)
                .to_string(),
        ]);
    }
    table.print();
    println!("TopoAC should produce (near-)zero wall-crossing clusters, matching Fig. 7.");
}
