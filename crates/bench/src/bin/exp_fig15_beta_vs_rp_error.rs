//! Fig. 15: removal ratio β vs RP-imputation error (mean Euclidean distance in
//! metres) for the imputers that impute reference points.

use radiomap_core::prelude::*;
use radiomap_core::{rp_imputation_error, DifferentiatorKind, ImputerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_bench::{experiment_dataset, experiment_seed, fmt, impute_only, wifi_presets, ReportTable};

fn main() {
    let betas = [0.1, 0.2, 0.3, 0.4, 0.5];
    let imputers = [
        ("T-BiSIM", DifferentiatorKind::TopoAc, ImputerKind::Bisim),
        ("D-BiSIM", DifferentiatorKind::DasaKm, ImputerKind::Bisim),
        (
            "LI",
            DifferentiatorKind::TopoAc,
            ImputerKind::LinearInterpolation,
        ),
        (
            "SL",
            DifferentiatorKind::TopoAc,
            ImputerKind::SemiSupervised,
        ),
        ("MICE", DifferentiatorKind::TopoAc, ImputerKind::Mice),
        (
            "MF",
            DifferentiatorKind::TopoAc,
            ImputerKind::MatrixFactorization,
        ),
    ];
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let mut table = ReportTable::new(
            &format!(
                "Fig. 15 — removal ratio β vs RP error (m), {}",
                preset.name()
            ),
            &["Imputer", "β=10%", "β=20%", "β=30%", "β=40%", "β=50%"],
        );
        for (label, diff, imputer) in imputers {
            let mut row = vec![label.to_string()];
            for &beta in &betas {
                let mut rng = StdRng::seed_from_u64(experiment_seed() ^ (beta * 977.0) as u64);
                let (perturbed, removed) = remove_random_rps(&dataset.radio_map, beta, &mut rng);
                let imputed = impute_only(&perturbed, &dataset.venue.walls, diff, imputer);
                row.push(
                    rp_imputation_error(&imputed, &removed)
                        .map(fmt)
                        .unwrap_or_else(|| "n/a".into()),
                );
            }
            table.add_row(row);
        }
        table.print();
    }
}
