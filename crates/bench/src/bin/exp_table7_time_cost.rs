//! Table VII: data-imputation wall-clock time per imputer and venue.

use radiomap_core::{DifferentiatorKind, ImputerKind};
use rm_bench::{experiment_dataset, fmt, impute_only, wifi_presets, ReportTable};
use std::time::Instant;

fn main() {
    let imputers = [
        ImputerKind::LinearInterpolation,
        ImputerKind::SemiSupervised,
        ImputerKind::Mice,
        ImputerKind::MatrixFactorization,
        ImputerKind::Brits,
        ImputerKind::Ssgan,
        ImputerKind::Bisim,
    ];
    let mut table = ReportTable::new(
        "Table VII — data imputation time cost (seconds)",
        &["Venue", "LI", "SL", "MICE", "MF", "BRITS", "SSGAN", "BiSIM"],
    );
    for preset in wifi_presets() {
        let dataset = experiment_dataset(preset);
        let mut row = vec![preset.name().to_string()];
        for imputer in imputers {
            let start = Instant::now();
            let _ = impute_only(
                &dataset.radio_map,
                &dataset.venue.walls,
                DifferentiatorKind::TopoAc,
                imputer,
            );
            row.push(fmt(start.elapsed().as_secs_f64()));
        }
        table.add_row(row);
    }
    table.print();
    println!("(Differentiation time is included once per cell; the paper reports minutes on the");
    println!(" full-size datasets — only the relative ordering is expected to match.)");
}
