//! Benchmarks of the online location-estimation algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rm_geometry::Point;
use rm_positioning::{ForestConfig, Knn, LocationEstimator, RandomForest, Wknn};
use rm_radiomap::DenseRadioMap;

fn synthetic_dense_map(n: usize, d: usize) -> DenseRadioMap {
    let mut rng = StdRng::seed_from_u64(11);
    let fingerprints = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-100.0..-40.0)).collect())
        .collect();
    let locations = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..40.0)))
        .collect();
    DenseRadioMap::new(fingerprints, locations, d)
}

fn bench_estimators(c: &mut Criterion) {
    let map = synthetic_dense_map(500, 60);
    let query: Vec<f64> = (0..60).map(|i| -60.0 - i as f64 * 0.3).collect();

    let knn = Knn::new(map.clone(), 3);
    c.bench_function("knn_query_500x60", |b| {
        b.iter(|| std::hint::black_box(knn.estimate(&query)))
    });
    let wknn = Wknn::new(map.clone(), 3);
    c.bench_function("wknn_query_500x60", |b| {
        b.iter(|| std::hint::black_box(wknn.estimate(&query)))
    });
    let forest = RandomForest::train(&map, &ForestConfig::default());
    c.bench_function("random_forest_query_500x60", |b| {
        b.iter(|| std::hint::black_box(forest.estimate(&query)))
    });
}

fn bench_forest_training(c: &mut Criterion) {
    let map = synthetic_dense_map(300, 40);
    c.bench_function("random_forest_train_300x40", |b| {
        b.iter(|| std::hint::black_box(RandomForest::train(&map, &ForestConfig::default())))
    });
}

criterion_group!(positioning, bench_estimators, bench_forest_training);
criterion_main!(positioning);
