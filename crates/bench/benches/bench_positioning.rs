//! Benchmarks of the online location-estimation algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rm_geometry::Point;
use rm_positioning::{
    ForestConfig, Knn, LocationEstimator, QuantizedFingerprints, RandomForest, Wknn,
};
use rm_radiomap::DenseRadioMap;

fn synthetic_dense_map(n: usize, d: usize) -> DenseRadioMap {
    let mut rng = StdRng::seed_from_u64(11);
    let fingerprints = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-100.0..-40.0)).collect())
        .collect();
    let locations = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..40.0)))
        .collect();
    DenseRadioMap::new(fingerprints, locations, d)
}

fn bench_estimators(c: &mut Criterion) {
    let map = synthetic_dense_map(500, 60);
    let query: Vec<f64> = (0..60).map(|i| -60.0 - i as f64 * 0.3).collect();

    let knn = Knn::new(map.clone(), 3);
    c.bench_function("knn_query_500x60", |b| {
        b.iter(|| std::hint::black_box(knn.estimate(&query)))
    });
    let wknn = Wknn::new(map.clone(), 3);
    c.bench_function("wknn_query_500x60", |b| {
        b.iter(|| std::hint::black_box(wknn.estimate(&query)))
    });
    let forest = RandomForest::train(&map, &ForestConfig::default());
    c.bench_function("random_forest_query_500x60", |b| {
        b.iter(|| std::hint::black_box(forest.estimate(&query)))
    });
}

/// The candidate-ranking scan head-to-head: the exact f64 Euclidean scan
/// the estimators used to run per query vs the int8-quantized i32 kernel
/// that now ranks candidates (the estimator benches above already time the
/// full two-phase query; this isolates the scan the quantization speeds up).
fn bench_knn_ranking_scan(c: &mut Criterion) {
    eprintln!(
        "int8 ranking kernel: {}",
        if rm_tensor::simd_enabled() {
            "dispatched (avx2 where available)"
        } else {
            "scalar (RM_SIMD=0)"
        }
    );
    let map = synthetic_dense_map(500, 60);
    let query: Vec<f64> = (0..60).map(|i| -60.0 - i as f64 * 0.3).collect();
    let quant = QuantizedFingerprints::from_map(&map);
    let encoded = quant.encode_query(&query);
    c.bench_function("knn_rank_scan_int8_500x60", |b| {
        b.iter(|| std::hint::black_box(quant.squared_distances(&encoded)))
    });
    c.bench_function("knn_rank_scan_f64_500x60", |b| {
        b.iter(|| {
            let scores: Vec<f64> = map
                .fingerprints()
                .iter()
                .map(|f| {
                    query
                        .iter()
                        .zip(f.iter())
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                })
                .collect();
            std::hint::black_box(scores)
        })
    });
}

fn bench_forest_training(c: &mut Criterion) {
    let map = synthetic_dense_map(300, 40);
    c.bench_function("random_forest_train_300x40", |b| {
        b.iter(|| std::hint::black_box(RandomForest::train(&map, &ForestConfig::default())))
    });
}

criterion_group!(
    positioning,
    bench_estimators,
    bench_knn_ranking_scan,
    bench_forest_training
);
criterion_main!(positioning);
