//! Micro-benchmarks of the numerical kernels underlying the neural imputers.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_nn::{LstmCell, LstmState, LstmStateMatrix};
use rm_tensor::{Matrix, Var};

fn bench_matmul(c: &mut Criterion) {
    // Stamp recorded runs with the axpy_row kernel this process resolved to
    // (scalar / avx2 / avx2+fma), so BENCH_baseline.json entries stay
    // attributable without renaming the cross-PR bench ids.
    eprintln!("axpy_row kernel: {}", rm_tensor::simd_kernel_name());
    let mut rng = StdRng::seed_from_u64(1);
    let a: Matrix = Matrix::random_uniform(64, 128, 1.0, &mut rng);
    let b: Matrix = Matrix::random_uniform(128, 64, 1.0, &mut rng);
    c.bench_function("matrix_matmul_64x128x64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul(&b)))
    });
    let mut out = Matrix::zeros(64, 64);
    c.bench_function("matrix_matmul_into_64x128x64", |bencher| {
        bencher.iter(|| {
            a.matmul_into(&b, &mut out);
            std::hint::black_box(out.get(0, 0))
        })
    });
    c.bench_function("matrix_matmul_naive_64x128x64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul_naive(&b)))
    });
    // The gradient kernels of the autodiff backward pass: dA = dC · Bᵀ via
    // explicit transpose + blocked matmul (the transpose is timed — it is
    // part of the path), dB = Aᵀ · dC via the transposed kernel.
    let grad = Matrix::random_uniform(64, 64, 1.0, &mut rng);
    let b_factor = a.transpose(); // plays B (128×64) in C = A·B
    c.bench_function("matrix_matmul_grad_a_64x64x128", |bencher| {
        bencher.iter(|| std::hint::black_box(grad.matmul(&b_factor.transpose())))
    });
    c.bench_function("matrix_matmul_at_b_64x128_64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul_at_b(&grad)))
    });
}

/// The precision axis head-to-head: the same blocked kernel monomorphised
/// for f32 vs f64 on identical shapes (the f32 operands are the rounded f64
/// operands, so the work is identical except for lane width and memory
/// traffic). The acceptance bar for the precision-axis PR is f32 ≥ 1.8×
/// faster than f64 on the matmul shapes below.
fn bench_matmul_f32(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a: Matrix<f32> = Matrix::<f64>::random_uniform(64, 128, 1.0, &mut rng).cast();
    let b: Matrix<f32> = Matrix::<f64>::random_uniform(128, 64, 1.0, &mut rng).cast();
    c.bench_function("matrix_matmul_f32_64x128x64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul(&b)))
    });
    let mut out = Matrix::<f32>::zeros(64, 64);
    c.bench_function("matrix_matmul_into_f32_64x128x64", |bencher| {
        bencher.iter(|| {
            a.matmul_into(&b, &mut out);
            std::hint::black_box(out.get(0, 0))
        })
    });
    let grad: Matrix<f32> = Matrix::<f64>::random_uniform(64, 64, 1.0, &mut rng).cast();
    c.bench_function("matrix_matmul_at_b_f32_64x128_64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul_at_b(&grad)))
    });
}

/// The imputer inference hot path at both precisions: one graph-free LSTM
/// snapshot step (the kernel the BRITS/SSGAN f32 inference mode actually
/// runs, via `LstmCellWeights<T>::step`).
fn bench_lstm_snapshot_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let cell: LstmCell = LstmCell::new(96, 64, &mut rng);
    let weights = cell.snapshot();
    let weights32 = weights.cast::<f32>();
    let input = Matrix::<f64>::random_uniform(96, 1, 1.0, &mut rng);
    let input32: Matrix<f32> = input.cast();
    let state = LstmStateMatrix::zeros(64);
    let state32: LstmStateMatrix<f32> = LstmStateMatrix::zeros(64);
    c.bench_function("lstm_snapshot_step_f64_96_to_64", |bencher| {
        bencher.iter(|| std::hint::black_box(weights.step(&input, &state).h.get(0, 0)))
    });
    c.bench_function("lstm_snapshot_step_f32_96_to_64", |bencher| {
        bencher.iter(|| std::hint::black_box(weights32.step(&input32, &state32).h.get(0, 0)))
    });
}

fn bench_lstm_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let cell: LstmCell = LstmCell::new(96, 64, &mut rng);
    let input = Var::constant(Matrix::random_uniform(96, 1, 1.0, &mut rng));
    let state = LstmState::zeros(64);
    c.bench_function("lstm_cell_step_96_to_64", |bencher| {
        bencher.iter(|| std::hint::black_box(cell.step(&input, &state).h.value()))
    });
}

fn bench_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let w: Var = Var::parameter(Matrix::random_uniform(64, 64, 0.1, &mut rng));
    let x = Var::constant(Matrix::random_uniform(64, 1, 1.0, &mut rng));
    c.bench_function("autodiff_forward_backward_64", |bencher| {
        bencher.iter(|| {
            w.zero_grad();
            let loss = w.matmul(&x).tanh().square().sum();
            loss.backward();
            std::hint::black_box(w.grad())
        })
    });
}

criterion_group!(
    kernels,
    bench_matmul,
    bench_matmul_f32,
    bench_lstm_snapshot_step,
    bench_lstm_step,
    bench_backward
);
criterion_main!(kernels);
