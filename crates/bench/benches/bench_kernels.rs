//! Micro-benchmarks of the numerical kernels underlying the neural imputers.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_nn::{LstmCell, LstmState};
use rm_tensor::{Matrix, Var};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::random_uniform(64, 128, 1.0, &mut rng);
    let b = Matrix::random_uniform(128, 64, 1.0, &mut rng);
    c.bench_function("matrix_matmul_64x128x64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul(&b)))
    });
    let mut out = Matrix::zeros(64, 64);
    c.bench_function("matrix_matmul_into_64x128x64", |bencher| {
        bencher.iter(|| {
            a.matmul_into(&b, &mut out);
            std::hint::black_box(out.get(0, 0))
        })
    });
    c.bench_function("matrix_matmul_naive_64x128x64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul_naive(&b)))
    });
    // The gradient kernels of the autodiff backward pass: dA = dC · Bᵀ via
    // explicit transpose + blocked matmul (the transpose is timed — it is
    // part of the path), dB = Aᵀ · dC via the transposed kernel.
    let grad = Matrix::random_uniform(64, 64, 1.0, &mut rng);
    let b_factor = a.transpose(); // plays B (128×64) in C = A·B
    c.bench_function("matrix_matmul_grad_a_64x64x128", |bencher| {
        bencher.iter(|| std::hint::black_box(grad.matmul(&b_factor.transpose())))
    });
    c.bench_function("matrix_matmul_at_b_64x128_64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul_at_b(&grad)))
    });
}

fn bench_lstm_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let cell = LstmCell::new(96, 64, &mut rng);
    let input = Var::constant(Matrix::random_uniform(96, 1, 1.0, &mut rng));
    let state = LstmState::zeros(64);
    c.bench_function("lstm_cell_step_96_to_64", |bencher| {
        bencher.iter(|| std::hint::black_box(cell.step(&input, &state).h.value()))
    });
}

fn bench_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let w = Var::parameter(Matrix::random_uniform(64, 64, 0.1, &mut rng));
    let x = Var::constant(Matrix::random_uniform(64, 1, 1.0, &mut rng));
    c.bench_function("autodiff_forward_backward_64", |bencher| {
        bencher.iter(|| {
            w.zero_grad();
            let loss = w.matmul(&x).tanh().square().sum();
            loss.backward();
            std::hint::black_box(w.grad())
        })
    });
}

criterion_group!(kernels, bench_matmul, bench_lstm_step, bench_backward);
criterion_main!(kernels);
