//! Micro-benchmarks of the numerical kernels underlying the neural imputers.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rm_nn::{LstmCell, LstmState};
use rm_tensor::{Matrix, Var};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::random_uniform(64, 128, 1.0, &mut rng);
    let b = Matrix::random_uniform(128, 64, 1.0, &mut rng);
    c.bench_function("matrix_matmul_64x128x64", |bencher| {
        bencher.iter(|| std::hint::black_box(a.matmul(&b)))
    });
}

fn bench_lstm_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let cell = LstmCell::new(96, 64, &mut rng);
    let input = Var::constant(Matrix::random_uniform(96, 1, 1.0, &mut rng));
    let state = LstmState::zeros(64);
    c.bench_function("lstm_cell_step_96_to_64", |bencher| {
        bencher.iter(|| std::hint::black_box(cell.step(&input, &state).h.value()))
    });
}

fn bench_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let w = Var::parameter(Matrix::random_uniform(64, 64, 0.1, &mut rng));
    let x = Var::constant(Matrix::random_uniform(64, 1, 1.0, &mut rng));
    c.bench_function("autodiff_forward_backward_64", |bencher| {
        bencher.iter(|| {
            w.zero_grad();
            let loss = w.matmul(&x).tanh().square().sum();
            loss.backward();
            std::hint::black_box(w.grad())
        })
    });
}

criterion_group!(kernels, bench_matmul, bench_lstm_step, bench_backward);
criterion_main!(kernels);
