//! Benchmarks of the clustering algorithms used by the differentiators.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rm_clustering::{kmeans, KMeansConfig};
use rm_differentiator::DiffSample;
use rm_differentiator::{ClusteringStrategy, TopoAc};
use rm_geometry::{MultiPolygon, Point, Polygon};

fn synthetic_samples(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<DiffSample>) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut features = Vec::new();
    let mut samples = Vec::new();
    for i in 0..n {
        let profile: Vec<f64> = (0..d).map(|_| f64::from(rng.gen_bool(0.2))).collect();
        let location = Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..40.0));
        let mut f = profile.clone();
        f.push(location.x * 0.25);
        f.push(location.y * 0.25);
        features.push(f);
        samples.push(DiffSample {
            record_index: i,
            profile,
            location: Some(location),
        });
    }
    (features, samples)
}

fn bench_kmeans(c: &mut Criterion) {
    let (features, _) = synthetic_samples(300, 40);
    c.bench_function("kmeans_300x42_k12", |bencher| {
        bencher.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            std::hint::black_box(kmeans(&features, &KMeansConfig::new(12), &mut rng))
        })
    });
}

fn bench_topoac(c: &mut Criterion) {
    let (_, samples) = synthetic_samples(150, 40);
    let walls = MultiPolygon::new(vec![
        Polygon::rectangle(Point::new(20.0, 0.0), Point::new(20.4, 40.0)),
        Polygon::rectangle(Point::new(40.0, 0.0), Point::new(40.4, 40.0)),
    ]);
    c.bench_function("topoac_150_samples_2_walls", |bencher| {
        bencher.iter(|| {
            let strategy = TopoAc::new(walls.clone());
            std::hint::black_box(strategy.cluster(&samples))
        })
    });
}

criterion_group!(clustering, bench_kmeans, bench_topoac);
criterion_main!(clustering);
