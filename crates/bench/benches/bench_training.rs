//! Training-throughput benchmarks of the deterministic mini-batch trainers.
//!
//! The headline comparison is one BRITS training epoch (plus its fixed
//! sequence-prep/inference tail, identical across cases) at:
//!
//! * `batch1_t1` — the default configuration: single-sequence batches on the
//!   live graph, i.e. the classic serial SGD trajectory. This is the
//!   baseline the batched path's overhead is measured against.
//! * `batch4_t1` — fixed 4-sequence batches forced onto one thread: measures
//!   the pure snapshot/rebuild/reduction overhead of the batched path (the
//!   PR 5 acceptance bar is ≤ ~5% over `batch1_t1`; note the trajectories
//!   differ — this compares *cost*, not output).
//! * `batch4_t2` / `batch4_t4` — the same batched work fanned out over the
//!   persistent pool. On a multicore box the epoch wall-clock should scale
//!   with the thread count; on a single-CPU container these rows bound the
//!   dispatch overhead instead.
//!
//! An SSGAN row exercises the two-phase (discriminator/generator) batching
//! and a BiSIM row the attention-model rebuild, both at the batched shape
//! only (their batch-1 paths share the BRITS fast-path machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use rm_bisim::{Bisim, BisimConfig};
use rm_differentiator::{Differentiator, MnarOnly};
use rm_imputers::{Brits, BritsConfig, Imputer, Ssgan, SsganConfig};
use rm_radiomap::{MaskMatrix, RadioMap};
use rm_venue_sim::{DatasetSpec, VenuePreset};

fn training_fixture() -> (RadioMap, MaskMatrix) {
    let dataset = DatasetSpec::new(VenuePreset::KaideLike, 9)
        .with_scale(0.05)
        .build();
    let map = dataset.radio_map.clone();
    let mask = MnarOnly.differentiate(&map);
    (map, mask)
}

fn brits_config(batch_size: usize, threads: usize) -> BritsConfig {
    BritsConfig {
        epochs: 1,
        hidden_size: 16,
        batch_size,
        threads,
        ..BritsConfig::default()
    }
}

fn bench_brits_batched_training(c: &mut Criterion) {
    let (map, mask) = training_fixture();
    let mut group = c.benchmark_group("train_brits");
    group.sample_size(10);
    for (name, batch_size, threads) in [
        ("brits_epoch_batch1_t1", 1, 1),
        ("brits_epoch_batch4_t1", 4, 1),
        ("brits_epoch_batch4_t2", 4, 2),
        ("brits_epoch_batch4_t4", 4, 4),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(
                    Brits::new(brits_config(batch_size, threads)).impute(&map, &mask),
                )
            })
        });
    }
    group.finish();
}

fn bench_ssgan_batched_training(c: &mut Criterion) {
    let (map, mask) = training_fixture();
    let mut group = c.benchmark_group("train_ssgan");
    group.sample_size(10);
    for (name, batch_size, threads) in [
        ("ssgan_epoch_batch1_t1", 1, 1),
        ("ssgan_epoch_batch4_t2", 4, 2),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let ssgan = Ssgan::new(SsganConfig {
                    epochs: 1,
                    hidden_size: 16,
                    discriminator_hidden: 16,
                    batch_size,
                    threads,
                    ..SsganConfig::default()
                });
                std::hint::black_box(ssgan.impute(&map, &mask))
            })
        });
    }
    group.finish();
}

fn bench_bisim_batched_training(c: &mut Criterion) {
    let (map, mask) = training_fixture();
    let mut group = c.benchmark_group("train_bisim");
    group.sample_size(10);
    for (name, batch_size, threads) in [
        ("bisim_epoch_batch1_t1", 1, 1),
        ("bisim_epoch_batch4_t2", 4, 2),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let bisim = Bisim::new(BisimConfig {
                    epochs: 1,
                    hidden_size: 16,
                    batch_size,
                    threads,
                    ..BisimConfig::default()
                });
                std::hint::black_box(bisim.impute(&map, &mask))
            })
        });
    }
    group.finish();
}

criterion_group!(
    training,
    bench_brits_batched_training,
    bench_ssgan_batched_training,
    bench_bisim_batched_training
);
criterion_main!(training);
