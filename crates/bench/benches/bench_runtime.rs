//! Dispatch-overhead benchmarks of the `rm-runtime` fan-out primitives.
//!
//! The numbers that matter here are the *small* fan-outs: a ≤64-item
//! `par_map` whose per-item work is trivial measures almost pure dispatch
//! cost, which is exactly what the minimum-work gates in `rm_imputers::gates`
//! are calibrated against. `par_map` routes through the persistent pool;
//! `par_map_scoped` is the pre-pool scoped-spawn baseline kept for this
//! comparison (the PR 4 acceptance bar is pool ≥5× cheaper on the small
//! shapes). All parallel cases pin `threads = 2` explicitly so the fan-out
//! actually dispatches even on a single-CPU container (where auto resolves
//! to 1 and would fall back to serial).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rm_geometry::Point;
use rm_positioning::{ForestConfig, RandomForest};
use rm_radiomap::DenseRadioMap;

/// A handful of flops per item: comparable to one MICE correlation cell or
/// one ridge prediction, the work units the imputer gates count.
fn tiny_work(i: usize, v: u64) -> u64 {
    rm_runtime::derive_seed(v, i as u64)
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    let items64: Vec<u64> = (0..64).collect();
    let items8: Vec<u64> = (0..8).collect();

    c.bench_function("par_map_64_tiny_serial", |b| {
        b.iter(|| std::hint::black_box(rm_runtime::par_map(1, &items64, |i, &v| tiny_work(i, v))))
    });
    c.bench_function("par_map_64_tiny_pool_t2", |b| {
        b.iter(|| std::hint::black_box(rm_runtime::par_map(2, &items64, |i, &v| tiny_work(i, v))))
    });
    c.bench_function("par_map_64_tiny_scoped_t2", |b| {
        b.iter(|| {
            std::hint::black_box(rm_runtime::par_map_scoped(2, &items64, |i, &v| {
                tiny_work(i, v)
            }))
        })
    });
    c.bench_function("par_map_8_tiny_pool_t2", |b| {
        b.iter(|| std::hint::black_box(rm_runtime::par_map(2, &items8, |i, &v| tiny_work(i, v))))
    });
    c.bench_function("par_map_8_tiny_scoped_t2", |b| {
        b.iter(|| {
            std::hint::black_box(rm_runtime::par_map_scoped(2, &items8, |i, &v| {
                tiny_work(i, v)
            }))
        })
    });

    let chunked: Vec<u64> = (0..256).collect();
    c.bench_function("par_chunks_256c16_pool_t2", |b| {
        b.iter(|| {
            std::hint::black_box(rm_runtime::par_chunks(2, &chunked, 16, |ci, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| tiny_work(ci * 16 + i, v))
                    .sum::<u64>()
            }))
        })
    });
}

fn synthetic_dense_map(n: usize, d: usize) -> DenseRadioMap {
    let mut rng = StdRng::seed_from_u64(11);
    let fingerprints = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-100.0..-40.0)).collect())
        .collect();
    let locations = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..60.0), rng.gen_range(0.0..40.0)))
        .collect();
    DenseRadioMap::new(fingerprints, locations, d)
}

/// Forest training with the per-tree `derive_seed` streams: serial vs a
/// 2-wide pool fan-out. On a single-CPU container the t2 number bounds the
/// pool's overhead; on multicore it shows the per-tree speedup.
fn bench_forest_training(c: &mut Criterion) {
    let map = synthetic_dense_map(300, 40);
    c.bench_function("forest_train_300x40_t1", |b| {
        b.iter(|| {
            std::hint::black_box(RandomForest::train(
                &map,
                &ForestConfig {
                    threads: 1,
                    ..ForestConfig::default()
                },
            ))
        })
    });
    c.bench_function("forest_train_300x40_t2_pool", |b| {
        b.iter(|| {
            std::hint::black_box(RandomForest::train(
                &map,
                &ForestConfig {
                    threads: 2,
                    ..ForestConfig::default()
                },
            ))
        })
    });
}

criterion_group!(runtime, bench_dispatch_overhead, bench_forest_training);
criterion_main!(runtime);
