//! Benchmarks of the deterministic imputers and a single BiSIM training epoch
//! on a small radio map (the neural imputers' full training is exercised by
//! the experiment binaries instead).

use criterion::{criterion_group, criterion_main, Criterion};
use rm_bisim::{Bisim, BisimConfig};
use rm_differentiator::{Differentiator, MnarOnly};
use rm_imputers::{
    Brits, BritsConfig, Imputer, LinearInterpolation, MatrixFactorization, Mice, SemiSupervised,
};
use rm_tensor::Precision;
use rm_venue_sim::{DatasetSpec, VenuePreset};

fn bench_deterministic_imputers(c: &mut Criterion) {
    let dataset = DatasetSpec::new(VenuePreset::KaideLike, 9)
        .with_scale(0.06)
        .build();
    let map = dataset.radio_map.clone();
    let mask = MnarOnly.differentiate(&map);

    c.bench_function("imputer_li", |b| {
        b.iter(|| std::hint::black_box(LinearInterpolation.impute(&map, &mask)))
    });
    c.bench_function("imputer_sl", |b| {
        b.iter(|| std::hint::black_box(SemiSupervised::default().impute(&map, &mask)))
    });
    c.bench_function("imputer_mice", |b| {
        b.iter(|| std::hint::black_box(Mice::default().impute(&map, &mask)))
    });
    c.bench_function("imputer_mf", |b| {
        b.iter(|| std::hint::black_box(MatrixFactorization::default().impute(&map, &mask)))
    });
}

/// BRITS end to end (1 training epoch + inference) at both inference
/// precisions. Training dominates and is identical f64 work in both, so the
/// delta between the two benches is the inference-pass saving of the f32
/// kernels; the pair mainly guards against the f32 path regressing the
/// imputer wholesale.
fn bench_brits_precisions(c: &mut Criterion) {
    let dataset = DatasetSpec::new(VenuePreset::KaideLike, 9)
        .with_scale(0.05)
        .build();
    let map = dataset.radio_map.clone();
    let mask = MnarOnly.differentiate(&map);
    let config = |precision| BritsConfig {
        epochs: 1,
        hidden_size: 16,
        precision,
        ..BritsConfig::default()
    };
    let mut group = c.benchmark_group("brits");
    group.sample_size(10);
    group.bench_function("brits_impute_1_epoch_f64", |b| {
        b.iter(|| std::hint::black_box(Brits::new(config(Precision::F64)).impute(&map, &mask)))
    });
    group.bench_function("brits_impute_1_epoch_f32", |b| {
        b.iter(|| std::hint::black_box(Brits::new(config(Precision::F32)).impute(&map, &mask)))
    });
    group.finish();
}

fn bench_bisim_single_epoch(c: &mut Criterion) {
    let dataset = DatasetSpec::new(VenuePreset::KaideLike, 9)
        .with_scale(0.05)
        .build();
    let map = dataset.radio_map.clone();
    let mask = MnarOnly.differentiate(&map);
    let mut group = c.benchmark_group("bisim");
    group.sample_size(10);
    group.bench_function("bisim_train_1_epoch_small", |b| {
        b.iter(|| {
            let bisim = Bisim::new(BisimConfig {
                epochs: 1,
                hidden_size: 16,
                ..BisimConfig::default()
            });
            std::hint::black_box(bisim.impute(&map, &mask))
        })
    });
    group.finish();
}

criterion_group!(
    imputers,
    bench_deterministic_imputers,
    bench_brits_precisions,
    bench_bisim_single_epoch
);
criterion_main!(imputers);
