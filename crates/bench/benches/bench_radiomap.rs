//! Benchmarks of radio-map creation and differentiation-sample construction.

use criterion::{criterion_group, criterion_main, Criterion};
use rm_differentiator::build_samples;
use rm_venue_sim::{DatasetSpec, VenuePreset};

fn bench_radio_map_creation(c: &mut Criterion) {
    let dataset = DatasetSpec::new(VenuePreset::KaideLike, 3)
        .with_scale(0.08)
        .build();
    let table = dataset.survey_table().clone();
    c.bench_function("radio_map_creation_kaide_small", |bencher| {
        bencher.iter(|| std::hint::black_box(table.create_radio_map(1.0)))
    });
}

fn bench_binarization(c: &mut Criterion) {
    let dataset = DatasetSpec::new(VenuePreset::KaideLike, 3)
        .with_scale(0.08)
        .build();
    c.bench_function("differentiation_sample_construction", |bencher| {
        bencher.iter(|| std::hint::black_box(build_samples(&dataset.radio_map)))
    });
}

criterion_group!(radiomap, bench_radio_map_creation, bench_binarization);
criterion_main!(radiomap);
