//! Compares the missing-RSSI differentiators (TopoAC, DasaKM, ElbowKM and the
//! MAR-only / MNAR-only baselines) on the same venue, reporting the MAR/MNAR
//! split and the resulting positioning error with a fixed, fast imputer —
//! a miniature version of the paper's Fig. 12 study.
//!
//! Run with `cargo run -p rm-examples --release --bin differentiator_comparison`.

use radiomap_core::prelude::*;
use rm_examples::example_dataset;

fn main() {
    let dataset = example_dataset(VenuePreset::KaideLike, 11);
    println!(
        "Venue {} — {} records, {} APs, {:.1}% missing RSSIs\n",
        dataset.venue.name,
        dataset.radio_map.len(),
        dataset.radio_map.num_aps(),
        dataset.radio_map.missing_rssi_rate() * 100.0
    );
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>10}",
        "method", "#MAR", "#MNAR", "MAR share", "APE (m)"
    );

    let differentiators = [
        DifferentiatorKind::TopoAc,
        DifferentiatorKind::DasaKm,
        DifferentiatorKind::ElbowKm,
        DifferentiatorKind::MarOnly,
        DifferentiatorKind::MnarOnly,
    ];
    for kind in differentiators {
        let config = PipelineConfig {
            differentiator: kind,
            // A fast deterministic imputer keeps the comparison focused on the
            // differentiators; the full experiment harness uses BiSIM instead.
            imputer: ImputerKind::LinearInterpolation,
            ..PipelineConfig::default()
        };
        let pipeline = ImputationPipeline::new(config);
        let mask = pipeline.differentiate(&dataset.radio_map, &dataset.venue.walls);
        let (_, mar, mnar) = mask.counts();
        let result = pipeline.evaluate(&dataset.radio_map, &dataset.venue.walls);
        println!(
            "{:<10} {:>10} {:>10} {:>11.1}% {:>10.2}",
            kind.name(),
            mar,
            mnar,
            mask.mar_fraction().unwrap_or(0.0) * 100.0,
            result.ape_m
        );
    }
}
