//! Generalisability check on a Bluetooth venue (the paper's Longhu study,
//! Table VIII): the same framework is applied unchanged to a venue whose
//! access points are BLE beacons with a shorter range.
//!
//! Run with `cargo run -p rm-examples --release --bin bluetooth_venue`.

use radiomap_core::prelude::*;
use rm_examples::{example_dataset, fmt_metric};

fn main() {
    let dataset = example_dataset(VenuePreset::LonghuLike, 23);
    let stats = dataset.stats();
    println!("Bluetooth venue: {}", dataset.venue.name);
    println!("  floor area    : {:.0} m²", stats.floor_area_m2);
    println!("  beacons       : {}", stats.num_aps);
    println!("  fingerprints  : {}", stats.num_fingerprints);
    println!(
        "  missing RSSIs : {:.1}%\n",
        stats.missing_rssi_rate * 100.0
    );

    // Compare a traditional imputer against the neural imputers on RSSI
    // imputation error, using synthetically removed ground truth (β = 20 %).
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(99);
    let (perturbed, removed) = remove_random_rssis(&dataset.radio_map, 0.2, &mut rng);
    println!(
        "Removed {} observed RSSIs as ground truth (β = 20%).",
        removed.len()
    );

    for imputer_kind in [ImputerKind::Mice, ImputerKind::Brits, ImputerKind::Bisim] {
        let pipeline = ImputationPipeline::new(PipelineConfig {
            differentiator: DifferentiatorKind::TopoAc,
            imputer: imputer_kind,
            ..PipelineConfig::default()
        });
        let (imputed, _) = pipeline.impute(&perturbed, &dataset.venue.walls);
        let mae = rssi_imputation_mae(&imputed, &removed);
        println!(
            "  {:<6} RSSI MAE: {} dBm",
            imputer_kind.name(),
            fmt_metric(mae)
        );
    }

    // End-to-end positioning with the full T-BiSIM pipeline.
    let result = ImputationPipeline::new(PipelineConfig::default())
        .evaluate(&dataset.radio_map, &dataset.venue.walls);
    println!(
        "\nT-BiSIM + WKNN on the Bluetooth venue: APE = {:.2} m ({} queries)",
        result.ape_m, result.num_test_queries
    );
}
