//! From raw walking-survey records to positioning: shows every stage of the
//! offline phase explicitly — survey table → radio-map creation → missing-RSSI
//! differentiation → imputation → online location estimation.
//!
//! Run with `cargo run -p rm-examples --release --bin survey_to_positioning`.

use radiomap_core::prelude::*;
use rm_examples::example_dataset;

fn main() {
    let dataset = example_dataset(VenuePreset::WandaLike, 7);
    let survey = dataset.survey_table();
    println!("Walking survey:");
    println!("  paths         : {}", survey.num_paths());
    println!("  RP records    : {}", survey.rp_entry_count());
    println!("  RSSI scans    : {}", survey.rssi_entry_count());

    // Radio-map creation with the paper's merge threshold ε = 1 s.
    let map = survey.create_radio_map(1.0);
    println!("\nCreated radio map:");
    println!("  records       : {}", map.len());
    println!("  APs           : {}", map.num_aps());
    println!("  missing RSSIs : {:.1}%", map.missing_rssi_rate() * 100.0);
    println!("  missing RPs   : {:.1}%", map.missing_rp_rate() * 100.0);

    // Differentiate missing RSSIs with the topology-aware differentiator.
    let pipeline = ImputationPipeline::new(PipelineConfig {
        differentiator: DifferentiatorKind::TopoAc,
        imputer: ImputerKind::Brits,
        ..PipelineConfig::default()
    });
    let (imputed, mask) = pipeline.impute(&map, &dataset.venue.walls);
    let (observed, mar, mnar) = mask.counts();
    println!("\nDifferentiation (TopoAC, eta = 0.1):");
    println!("  observed      : {observed}");
    println!("  MAR           : {mar}");
    println!("  MNAR          : {mnar}");

    // Build the dense radio map and estimate a few locations with each estimator.
    let dense = imputed.to_dense(map.num_aps());
    println!("\nImputed radio map has {} usable records.", dense.len());
    let probe = dense.fingerprints()[0].clone();
    let truth = dense.locations()[0];
    for kind in EstimatorKind::all() {
        let estimator = kind.build(dense.clone(), 3);
        if let Some(estimate) = estimator.estimate(&probe) {
            println!(
                "  {:<4} estimate for record 0: ({:6.1}, {:6.1})  truth ({:6.1}, {:6.1})  error {:.2} m",
                kind.name(),
                estimate.x,
                estimate.y,
                truth.x,
                truth.y,
                estimate.distance(truth)
            );
        }
    }
}
