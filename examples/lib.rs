//! Shared helpers for the runnable examples.
//!
//! The examples default to very small synthetic datasets so they run in
//! seconds; set `RM_SCALE` (e.g. `RM_SCALE=0.3`) and `RM_EPOCHS` to run them
//! at larger scale.

use radiomap_core::prelude::*;

/// The venue scale used by the examples: `RM_SCALE` if set, else an
/// example-friendly 0.06 (smaller than the harness default so the examples
/// run in seconds). Resolved **once per process** and cached, matching the
/// accessor pattern of every other env knob in the workspace.
#[allow(clippy::disallowed_methods)] // audited env read; see the rm-lint allow inside
pub fn example_scale() -> f64 {
    static SCALE: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *SCALE.get_or_init(|| {
        // rm-lint: allow(no-raw-env-read): this IS the once-per-process cached accessor for the examples' RM_SCALE
        std::env::var("RM_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.06)
    })
}

/// Builds a small dataset for the given venue preset, honouring the `RM_SCALE`
/// environment variable but defaulting to an example-friendly size.
pub fn example_dataset(preset: VenuePreset, seed: u64) -> Dataset {
    DatasetSpec::new(preset, seed)
        .with_scale(example_scale())
        .build()
}

/// Formats an `Option<f64>` metric for display.
pub fn fmt_metric(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.2}"),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_dataset_builds() {
        let dataset = example_dataset(VenuePreset::KaideLike, 1);
        assert!(!dataset.radio_map.is_empty());
    }

    #[test]
    fn fmt_metric_handles_both_cases() {
        assert_eq!(fmt_metric(Some(1.234)), "1.23");
        assert_eq!(fmt_metric(None), "n/a");
    }
}
