//! Quickstart: build a synthetic venue, create its sparse radio map, run the
//! full differentiate → impute → evaluate pipeline, and print the resulting
//! indoor-positioning accuracy.
//!
//! Run with `cargo run -p rm-examples --release --bin quickstart`.

use radiomap_core::prelude::*;
use rm_examples::example_dataset;

fn main() {
    // 1. A Kaide-like shopping mall with simulated walking surveys.
    let dataset = example_dataset(VenuePreset::KaideLike, 42);
    let stats = dataset.stats();
    println!("{}", RadioMapStats::table_header());
    println!("{}", stats.to_table_row());
    println!();

    // 2. The full pipeline: TopoAC differentiator + BiSIM imputer + WKNN.
    let config = PipelineConfig {
        differentiator: DifferentiatorKind::TopoAc,
        imputer: ImputerKind::Bisim,
        ..PipelineConfig::default()
    };
    let pipeline = ImputationPipeline::new(config);
    println!("Running T-BiSIM (TopoAC differentiator + BiSIM imputer)...");
    let result = pipeline.evaluate(&dataset.radio_map, &dataset.venue.walls);

    println!(
        "MAR fraction among missing RSSIs : {}",
        result
            .mar_fraction
            .map(|f| format!("{:.1}%", f * 100.0))
            .unwrap_or_else(|| "n/a".into())
    );
    println!(
        "Differentiation time             : {:.2} s",
        result.differentiation_seconds
    );
    println!(
        "Imputation time                  : {:.2} s",
        result.imputation_seconds
    );
    println!(
        "Average positioning error (WKNN) : {:.2} m over {} test queries",
        result.ape_m, result.num_test_queries
    );

    // 3. Compare against the no-differentiation, no-learning baseline.
    let baseline = ImputationPipeline::new(PipelineConfig {
        differentiator: DifferentiatorKind::MnarOnly,
        imputer: ImputerKind::CaseDeletion,
        ..PipelineConfig::default()
    })
    .evaluate(&dataset.radio_map, &dataset.venue.walls);
    println!("Baseline (MNAR-only + CD)  APE   : {:.2} m", baseline.ape_m);
}
